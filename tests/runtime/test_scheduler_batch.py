"""Tests for the config-vectorized phase scheduler.

The contract is bitwise: ``simulate_phase_batch`` must return, for
every config column, exactly the floats the scalar ``simulate_phase``
call produces — the batch axis may never perturb a makespan or a busy
vector in the last ulp.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import get_metrics
from repro.runtime import simulate_phase
from repro.runtime.scheduler import (_STRUCTURE_CACHE, _structure_of,
                                     simulate_phase_batch)
from repro.trace import ComputePhase, TaskRecord


def make_phase(durations, deps=None, serial=0.0, creation=0.0, critical=0.0):
    tasks = tuple(
        TaskRecord(kernel="k", duration_ns=float(d),
                   deps=tuple(deps[i]) if deps else ())
        for i, d in enumerate(durations)
    )
    return ComputePhase(phase_id=0, tasks=tasks, serial_ns=serial,
                        creation_ns=creation, critical_ns=critical)


def assert_batch_matches_scalar(phase, n_cores, duration_scale=1.0,
                                overhead_scale=1.0, task_durations_ns=None):
    """Run both engines and require bitwise-equal results per column."""
    batch = simulate_phase_batch(phase, n_cores,
                                 duration_scale=duration_scale,
                                 overhead_scale=overhead_scale,
                                 task_durations_ns=task_durations_ns)
    n_cfg = len(n_cores)
    ds = np.broadcast_to(np.asarray(duration_scale, dtype=np.float64),
                         (n_cfg,))
    os_ = np.broadcast_to(np.asarray(overhead_scale, dtype=np.float64),
                          (n_cfg,))
    for k in range(n_cfg):
        if task_durations_ns is None:
            col = None
        else:
            arr = np.asarray(task_durations_ns, dtype=np.float64)
            col = (arr if arr.ndim == 1 else arr[:, k]).tolist()
        ref = simulate_phase(phase, int(n_cores[k]),
                             duration_scale=float(ds[k]),
                             overhead_scale=float(os_[k]),
                             task_durations_ns=col)
        got = batch[k]
        assert got.makespan_ns == ref.makespan_ns, k
        assert got.n_tasks == ref.n_tasks
        assert got.serial_ns == ref.serial_ns
        assert got.creation_ns_total == ref.creation_ns_total
        assert np.array_equal(got.busy_ns, ref.busy_ns), k
    return batch


durations_st = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=24)
scale_st = st.floats(min_value=0.05, max_value=20.0, allow_nan=False,
                     allow_infinity=False)


class TestBatchEqualsScalarBitwise:
    @settings(max_examples=150, deadline=None)
    @given(durations=durations_st,
           cores=st.lists(st.integers(min_value=1, max_value=64),
                          min_size=1, max_size=6),
           scale=scale_st,
           serial=st.floats(min_value=0.0, max_value=1e4),
           creation=st.floats(min_value=0.0, max_value=1e3),
           critical=st.floats(min_value=0.0, max_value=1e4))
    def test_nodeps_property(self, durations, cores, scale, serial,
                             creation, critical):
        phase = make_phase(durations, serial=serial, creation=creation,
                           critical=critical)
        assert_batch_matches_scalar(phase, cores, duration_scale=scale,
                                    overhead_scale=scale)

    @settings(max_examples=100, deadline=None)
    @given(durations=st.lists(st.floats(min_value=0.0, max_value=1e6),
                              min_size=2, max_size=24),
           cores=st.lists(st.integers(min_value=1, max_value=64),
                          min_size=1, max_size=6),
           scale=scale_st,
           creation=st.floats(min_value=0.0, max_value=1e3))
    def test_fanout0_property(self, durations, cores, scale, creation):
        deps = [()] + [(0,)] * (len(durations) - 1)
        phase = make_phase(durations, deps=deps, creation=creation)
        assert _structure_of(phase) == "fanout0"
        assert_batch_matches_scalar(phase, cores, duration_scale=scale,
                                    overhead_scale=scale)

    @settings(max_examples=75, deadline=None)
    @given(durations=st.lists(st.floats(min_value=0.0, max_value=1e6),
                              min_size=1, max_size=16),
           cores=st.lists(st.integers(min_value=1, max_value=32),
                          min_size=1, max_size=5),
           data=st.data())
    def test_per_config_duration_matrix(self, durations, cores, data):
        phase = make_phase(durations)
        mat = np.array([
            data.draw(st.lists(st.floats(min_value=0.0, max_value=1e6),
                               min_size=len(cores), max_size=len(cores)))
            for _ in durations
        ], dtype=np.float64)
        assert_batch_matches_scalar(phase, cores, task_durations_ns=mat)

    @settings(max_examples=60, deadline=None)
    @given(durations=durations_st,
           cores=st.lists(st.integers(min_value=1, max_value=32),
                          min_size=1, max_size=5),
           dscale=scale_st, oscale=scale_st)
    def test_unequal_scales_fall_back_and_still_match(self, durations,
                                                      cores, dscale, oscale):
        # overhead_scale != duration_scale is outside the vectorized
        # contract; it must fall back per config and still match.
        phase = make_phase(durations, serial=7.0, creation=3.0)
        assert_batch_matches_scalar(phase, cores, duration_scale=dscale,
                                    overhead_scale=oscale)


class TestBatchRegressions:
    def test_zero_duration_tasks(self):
        phase = make_phase([0.0, 0.0, 5.0, 0.0], creation=2.0)
        assert_batch_matches_scalar(phase, [1, 2, 8])

    def test_single_core(self):
        phase = make_phase([3.0, 1.0, 4.0, 1.0, 5.0])
        assert_batch_matches_scalar(phase, [1])

    def test_empty_phase_all_columns(self):
        phase = make_phase([], serial=11.0, critical=4.0)
        batch = assert_batch_matches_scalar(phase, [1, 4], overhead_scale=2.0)
        assert batch[0].makespan_ns == pytest.approx(30.0)

    def test_general_dag_falls_back(self):
        # A chain dependency is neither nodeps nor fanout0.
        phase = make_phase([10.0, 20.0, 30.0], deps=[(), (0,), (1,)])
        assert _structure_of(phase) is None
        reg = get_metrics()
        fb0 = reg.counter("sched.batch.fallbacks")
        assert_batch_matches_scalar(phase, [2, 4])
        assert reg.counter("sched.batch.fallbacks") - fb0 == 2

    def test_counters_split_fast_and_fallback(self):
        phase = make_phase([5.0, 6.0], serial=1.0)
        reg = get_metrics()
        fast0 = reg.counter("sched.batch.fast")
        fb0 = reg.counter("sched.batch.fallbacks")
        simulate_phase_batch(phase, [2, 4], duration_scale=1.0,
                             overhead_scale=1.0)
        assert reg.counter("sched.batch.fast") - fast0 == 2
        assert reg.counter("sched.batch.fallbacks") == fb0
        simulate_phase_batch(phase, [2, 4],
                             duration_scale=[1.0, 2.0],
                             overhead_scale=[1.0, 3.0])
        # Column 0 has equal scales (fast); column 1 does not (fallback).
        assert reg.counter("sched.batch.fast") - fast0 == 3
        assert reg.counter("sched.batch.fallbacks") - fb0 == 1

    def test_mixed_core_counts_group_correctly(self):
        phase = make_phase([9.0, 1.0, 7.0, 3.0, 2.0], creation=0.5)
        assert_batch_matches_scalar(phase, [4, 2, 4, 1, 2, 8])

    def test_input_validation(self):
        phase = make_phase([1.0])
        with pytest.raises(ValueError):
            simulate_phase_batch(phase, [0])
        with pytest.raises(ValueError):
            simulate_phase_batch(phase, [2], duration_scale=0.0)
        with pytest.raises(ValueError):
            simulate_phase_batch(phase, [[2]])
        with pytest.raises(ValueError):
            simulate_phase_batch(phase, [2],
                                 task_durations_ns=np.zeros((3, 2)))


class TestStructureCacheLru:
    def test_cache_is_lru_not_wipe_at_capacity(self):
        # Churn far past capacity: the cache must stay bounded and keep
        # serving the *hot* phase without evicting it.
        hot = make_phase([1.0, 2.0])
        assert _structure_of(hot) == "nodeps"
        for _ in range(_STRUCTURE_CACHE.maxsize + 50):
            cold = make_phase([3.0], deps=[()])
            _structure_of(cold)
            # Touch the hot phase each round: LRU keeps it resident.
            assert id(hot) in _STRUCTURE_CACHE
            assert _structure_of(hot) == "nodeps"
        assert len(_STRUCTURE_CACHE) <= _STRUCTURE_CACHE.maxsize

    def test_recycled_id_does_not_alias(self):
        # A dead phase's id() may be recycled; the cache keeps the phase
        # object alive in the value and re-checks identity on hit, so a
        # new phase with the same id cannot inherit a stale structure.
        phase = make_phase([1.0], deps=[()])
        assert _structure_of(phase) == "nodeps"
        key = id(phase)
        hit = _STRUCTURE_CACHE.get(key)
        assert hit is not None and hit[1] is phase
