"""Tests for heterogeneous (big.LITTLE) scheduling."""

import numpy as np
import pytest

from repro.config import baseline_node
from repro.runtime import (
    HeteroMix,
    area_matched_mix,
    simulate_phase,
    simulate_phase_hetero,
)

from .test_scheduler import make_phase


class TestHeteroScheduler:
    def test_uniform_speeds_match_homogeneous(self):
        phase = make_phase([10, 20, 30, 40], creation=1.0)
        homo = simulate_phase(phase, 4)
        het = simulate_phase_hetero(phase, [1.0] * 4)
        assert het.makespan_ns == pytest.approx(homo.makespan_ns)

    def test_slow_cores_slow_tasks(self):
        phase = make_phase([100.0])
        r = simulate_phase_hetero(phase, [0.5])
        assert r.makespan_ns == pytest.approx(200.0)

    def test_fast_core_preferred(self):
        # One task, two idle cores: it must land on the fast one.
        phase = make_phase([100.0])
        r = simulate_phase_hetero(phase, [1.0, 0.25], collect_spans=True)
        assert r.spans[0].core == 0
        assert r.makespan_ns == pytest.approx(100.0)

    def test_adding_little_cores_never_hurts_wide_phases(self):
        phase = make_phase([50.0] * 64)
        few = simulate_phase_hetero(phase, [1.0] * 8)
        more = simulate_phase_hetero(phase, [1.0] * 8 + [0.5] * 32)
        assert more.makespan_ns <= few.makespan_ns + 1e-9

    def test_work_conservation_in_busy_time(self):
        # Busy time on a 0.5x core is 2x the task's reference duration.
        phase = make_phase([100.0])
        r = simulate_phase_hetero(phase, [0.5])
        assert r.busy_ns.sum() == pytest.approx(200.0)

    def test_dependencies_respected(self):
        deps = [(), (0,), (1,)]
        r = simulate_phase_hetero(make_phase([10] * 3, deps=deps),
                                  [1.0, 0.5])
        assert r.makespan_ns >= 30.0 - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_phase_hetero(make_phase([1]), [])
        with pytest.raises(ValueError):
            simulate_phase_hetero(make_phase([1]), [1.0, -1.0])


class TestHeteroMix:
    def test_speeds_layout(self):
        from repro.config import core_preset

        mix = HeteroMix(n_big=2, n_little=3, big=core_preset("aggressive"),
                        little=core_preset("lowend"), little_speed=0.6)
        np.testing.assert_allclose(mix.speeds(),
                                   [1.0, 1.0, 0.6, 0.6, 0.6])
        assert mix.n_cores == 5

    def test_area_matched_mix_conserves_silicon(self):
        from repro.power import AreaModel

        node = baseline_node(64).with_(core="aggressive")
        am = AreaModel()
        budget = am.core_mm2(node) * 64
        mix = area_matched_mix(node, n_big=8, little_speed=0.6)
        spent = (am.core_mm2(node.with_(core=mix.big)) * mix.n_big
                 + am.core_mm2(node.with_(core=mix.little)) * mix.n_little)
        assert spent <= budget
        # and nearly all of it is used (within one little core)
        assert budget - spent < am.core_mm2(node.with_(core=mix.little))

    def test_little_cores_outnumber_big(self):
        node = baseline_node(64).with_(core="aggressive")
        mix = area_matched_mix(node, n_big=8, little_speed=0.6)
        assert mix.n_little > mix.n_big * 4

    def test_over_budget_rejected(self):
        node = baseline_node(8).with_(core="lowend")
        with pytest.raises(ValueError, match="area budget"):
            area_matched_mix(node, n_big=64, little_speed=0.5)


class TestCoDesignInsight:
    """The heterogeneity study reproduces the starvation logic: apps
    with abundant fine-grain parallelism tolerate little cores; starved
    apps need big ones."""

    def test_hydro_tolerates_littles(self):
        from repro.apps import get_app

        node = baseline_node(64).with_(core="aggressive")
        phase = get_app("hydro").representative_phase()
        homo = simulate_phase(phase, 64)
        mix = area_matched_mix(node, n_big=8, little_speed=0.6)
        het = simulate_phase_hetero(phase, mix.speeds())
        assert het.makespan_ns <= homo.makespan_ns * 1.05

    def test_spec3d_needs_bigs(self):
        from repro.apps import get_app

        node = baseline_node(64).with_(core="aggressive")
        phase = get_app("spec3d").representative_phase()
        homo = simulate_phase(phase, 64)
        mix = area_matched_mix(node, n_big=8, little_speed=0.6)
        het = simulate_phase_hetero(phase, mix.speeds())
        assert het.makespan_ns > homo.makespan_ns * 1.15
