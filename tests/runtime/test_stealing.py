"""Tests for the work-stealing scheduler variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import simulate_phase, simulate_phase_stealing
from repro.trace import ComputePhase, TaskRecord

from .test_scheduler import make_phase


class TestBasics:
    def test_single_core_serializes(self):
        r = simulate_phase_stealing(make_phase([10, 20, 30]), 1)
        assert r.makespan_ns == pytest.approx(60.0)

    def test_work_conserved(self):
        phase = make_phase([13, 7, 29, 11])
        for cores in (1, 2, 4, 8):
            r = simulate_phase_stealing(phase, cores, steal_ns=0.0)
            assert r.busy_ns.sum() == pytest.approx(60.0)

    def test_empty_phase(self):
        r = simulate_phase_stealing(make_phase([]), 4)
        assert r.n_tasks == 0

    def test_dependencies_respected(self):
        deps = [(), (0,), (1,)]
        r = simulate_phase_stealing(make_phase([10] * 3, deps=deps), 4,
                                    steal_ns=0.0)
        assert r.makespan_ns >= 30.0 - 1e-9

    def test_steal_cost_charged(self):
        # Many tasks created centrally: workers steal; nonzero steal cost
        # lengthens the schedule.
        phase = make_phase([50.0] * 32)
        cheap = simulate_phase_stealing(phase, 8, steal_ns=0.0)
        costly = simulate_phase_stealing(phase, 8, steal_ns=100.0)
        assert costly.makespan_ns >= cheap.makespan_ns

    def test_spans(self):
        r = simulate_phase_stealing(make_phase([10, 20]), 2,
                                    collect_spans=True)
        assert len(r.spans) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_phase_stealing(make_phase([1]), 0)
        with pytest.raises(ValueError):
            simulate_phase_stealing(make_phase([1]), 1, steal_ns=-1.0)


class TestVsFifoScheduler:
    @given(
        st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1,
                 max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_bounds_as_fifo(self, durations, n_cores):
        """Both schedulers are greedy: Graham bounds hold for each."""
        phase = make_phase(durations)
        r = simulate_phase_stealing(phase, n_cores, steal_ns=0.0)
        total, longest = sum(durations), max(durations)
        assert r.makespan_ns >= max(total / n_cores, longest) - 1e-6
        assert r.makespan_ns <= total / n_cores + longest + 1e-6

    def test_comparable_makespans_on_app_phase(self):
        from repro.apps import get_app

        phase = get_app("lulesh").representative_phase()
        fifo = simulate_phase(phase, 64)
        steal = simulate_phase_stealing(phase, 64)
        assert steal.makespan_ns == pytest.approx(fifo.makespan_ns,
                                                  rel=0.25)

    def test_stealing_helps_on_centralized_bursts(self):
        """With zero steal cost, stealing is never worse than FIFO here."""
        phase = make_phase([25.0] * 64, creation=1.0)
        fifo = simulate_phase(phase, 16)
        steal = simulate_phase_stealing(phase, 16, steal_ns=0.0)
        assert steal.makespan_ns <= fifo.makespan_ns * 1.1
