"""Tests for the discrete-event runtime scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import simulate_phase
from repro.trace import ComputePhase, TaskRecord


def make_phase(durations, deps=None, serial=0.0, creation=0.0, critical=0.0):
    tasks = tuple(
        TaskRecord(kernel="k", duration_ns=float(d),
                   deps=tuple(deps[i]) if deps else ())
        for i, d in enumerate(durations)
    )
    return ComputePhase(phase_id=0, tasks=tasks, serial_ns=serial,
                        creation_ns=creation, critical_ns=critical)


class TestBasicScheduling:
    def test_single_core_serializes(self):
        r = simulate_phase(make_phase([10, 20, 30]), n_cores=1)
        assert r.makespan_ns == pytest.approx(60.0)

    def test_enough_cores_runs_longest_task(self):
        r = simulate_phase(make_phase([10, 20, 30]), n_cores=8)
        assert r.makespan_ns == pytest.approx(30.0)

    def test_two_cores_pack(self):
        # 30 on one core; 20+10 on the other -> makespan 30.
        r = simulate_phase(make_phase([30, 20, 10]), n_cores=2)
        assert r.makespan_ns == pytest.approx(30.0)

    def test_busy_conservation(self):
        phase = make_phase([13, 7, 29, 11])
        for cores in (1, 2, 4, 8):
            r = simulate_phase(phase, cores)
            assert r.busy_ns.sum() == pytest.approx(60.0)

    def test_empty_phase(self):
        r = simulate_phase(make_phase([]), n_cores=4)
        assert r.makespan_ns == 0.0
        assert r.n_tasks == 0


class TestOverheads:
    def test_serial_section_delays_everything(self):
        r = simulate_phase(make_phase([10, 10], serial=100.0), n_cores=2)
        assert r.makespan_ns == pytest.approx(110.0)

    def test_creation_serializes_task_starts(self):
        # Task i ready at serial + (i+1)*creation; last at 3*5=15, +10 dur.
        r = simulate_phase(make_phase([10, 10, 10], creation=5.0), n_cores=8)
        assert r.makespan_ns == pytest.approx(25.0)

    def test_creation_bottleneck_dominates_small_tasks(self):
        # 100 tiny tasks, huge creation cost: makespan ~ creation-bound.
        r = simulate_phase(make_phase([1.0] * 100, creation=50.0), n_cores=64)
        assert r.makespan_ns == pytest.approx(100 * 50.0 + 1.0)

    def test_critical_sections_lower_bound(self):
        r = simulate_phase(make_phase([10, 10], critical=500.0), n_cores=2)
        assert r.makespan_ns == pytest.approx(500.0)

    def test_overhead_scale_applies_to_runtime_only(self):
        phase = make_phase([10, 10], serial=100.0)
        r1 = simulate_phase(phase, 2, overhead_scale=1.0)
        r2 = simulate_phase(phase, 2, overhead_scale=2.0)
        assert r2.makespan_ns - r1.makespan_ns == pytest.approx(100.0)

    def test_duration_scale(self):
        phase = make_phase([10, 20])
        r1 = simulate_phase(phase, 1)
        r2 = simulate_phase(phase, 1, duration_scale=3.0)
        assert r2.makespan_ns == pytest.approx(3 * r1.makespan_ns)


class TestDependencies:
    def test_chain_serializes(self):
        deps = [(), (0,), (1,), (2,)]
        r = simulate_phase(make_phase([10] * 4, deps=deps), n_cores=8)
        assert r.makespan_ns == pytest.approx(40.0)

    def test_serial_task_gates_parallel_work(self):
        # Task 0 is a serialized segment; 4 dependents then run in parallel.
        deps = [(), (0,), (0,), (0,), (0,)]
        r = simulate_phase(make_phase([100, 10, 10, 10, 10], deps=deps),
                           n_cores=4)
        assert r.makespan_ns == pytest.approx(110.0)

    def test_diamond(self):
        #   0
        #  / \
        # 1   2
        #  \ /
        #   3
        deps = [(), (0,), (0,), (1, 2)]
        r = simulate_phase(make_phase([5, 10, 20, 5], deps=deps), n_cores=4)
        assert r.makespan_ns == pytest.approx(5 + 20 + 5)


class TestExplicitDurations:
    def test_override(self):
        phase = make_phase([10, 10])
        r = simulate_phase(phase, 1, task_durations_ns=[100, 200])
        assert r.makespan_ns == pytest.approx(300.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="durations"):
            simulate_phase(make_phase([10]), 1, task_durations_ns=[1, 2])


class TestSpans:
    def test_spans_cover_tasks(self):
        r = simulate_phase(make_phase([10, 20, 30]), 2, collect_spans=True)
        assert len(r.spans) == 3
        total = sum(s.duration_ns for s in r.spans)
        assert total == pytest.approx(60.0)

    def test_spans_disjoint_per_core(self):
        r = simulate_phase(make_phase([7, 11, 13, 5, 9]), 2,
                           collect_spans=True)
        by_core = {}
        for s in r.spans:
            by_core.setdefault(s.core, []).append((s.start_ns, s.end_ns))
        for spans in by_core.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-9

    def test_spans_off_by_default(self):
        assert simulate_phase(make_phase([1]), 1).spans is None


class TestMetrics:
    def test_occupancy_bounds(self):
        r = simulate_phase(make_phase([10] * 7), 4)
        assert 0.0 < r.occupancy <= 1.0

    def test_idle_plus_busy_is_total(self):
        r = simulate_phase(make_phase([13, 5, 8]), 4)
        assert r.idle_ns + r.busy_ns.sum() == pytest.approx(
            4 * r.makespan_ns)


class TestProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                 max_size=40),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, durations, n_cores):
        """Greedy schedule: max(work/p, longest) <= makespan <= 2*opt bound."""
        r = simulate_phase(make_phase(durations), n_cores)
        total = sum(durations)
        longest = max(durations)
        lower = max(total / n_cores, longest)
        assert r.makespan_ns >= lower - 1e-6
        # Graham bound for list scheduling (no deps, no overheads).
        assert r.makespan_ns <= total / n_cores + longest + 1e-6

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1,
                 max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_cores_never_slower(self, durations, n_cores):
        phase = make_phase(durations)
        a = simulate_phase(phase, n_cores).makespan_ns
        b = simulate_phase(phase, n_cores * 2).makespan_ns
        assert b <= a + 1e-6

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_phase(make_phase([1]), 0)
        with pytest.raises(ValueError):
            simulate_phase(make_phase([1]), 1, duration_scale=0.0)


class TestFastPathEquivalence:
    """The structure-specialized scheduler (no-deps / fan-out) must be
    bitwise identical to the general ready-heap event loop."""

    def _assert_identical(self, phase, n_cores, **kw):
        fast = simulate_phase(phase, n_cores, collect_spans=True, **kw)
        general = simulate_phase(phase, n_cores, collect_spans=True,
                                 _force_general=True, **kw)
        assert fast.makespan_ns == general.makespan_ns
        assert np.array_equal(fast.busy_ns, general.busy_ns)
        assert fast.serial_ns == general.serial_ns
        assert fast.creation_ns_total == general.creation_ns_total
        assert fast.spans == general.spans

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                 max_size=40),
        st.integers(min_value=1, max_value=12),
        st.sampled_from(["nodeps", "fanout0"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_phases(self, durations, n_cores, structure):
        deps = None
        if structure == "fanout0":
            deps = [()] + [(0,) for _ in durations[1:]]
        phase = make_phase(durations, deps=deps, serial=3.0, creation=0.5)
        self._assert_identical(phase, n_cores)

    def test_duration_overrides_and_scales(self):
        phase = make_phase([10, 20, 30, 40], serial=2.0, critical=1.0)
        self._assert_identical(phase, 2,
                               task_durations_ns=[7.0, 3.0, 11.0, 5.0],
                               duration_scale=1.3, overhead_scale=0.5)

    def test_app_phases_identical(self):
        from repro.apps import get_app

        app = get_app("lulesh")
        for phase in app.iteration_phases():
            self._assert_identical(phase, 64)
