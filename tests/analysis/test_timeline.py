"""Tests for timeline analysis (Figs. 3 and 4)."""

import pytest

from repro.analysis import (
    occupancy_stats,
    rank_activity_stats,
    render_core_timeline,
    render_rank_timeline,
)
from repro.apps import get_app
from repro.core import Musa
from repro.network import TimelineSegment


class TestOccupancyStats:
    def test_starved_phase_detected(self):
        """Specfem3D on 64 cores: the Fig. 3 signature."""
        musa = Musa(get_app("spec3d"))
        result = musa.burst_phase(musa.app.representative_phase(), 64,
                                  collect_spans=True)
        stats = occupancy_stats(result)
        assert stats.starved
        assert stats.busy_fraction < 0.6

    def test_healthy_phase_not_starved(self):
        musa = Musa(get_app("hydro"))
        result = musa.burst_phase(musa.app.representative_phase(), 32,
                                  collect_spans=True)
        stats = occupancy_stats(result)
        assert not stats.starved
        assert stats.busy_fraction > 0.7

    def test_active_core_count(self):
        musa = Musa(get_app("spec3d"))
        result = musa.burst_phase(musa.app.representative_phase(), 64,
                                  collect_spans=True)
        stats = occupancy_stats(result)
        # Fewer tasks than cores: many cores never execute anything.
        assert stats.active_cores < 64


class TestRankActivityStats:
    def test_lulesh_barrier_waste(self):
        """LULESH ranks spend big fractions in collectives (Fig. 4).

        Threshold calibrated with sender-link serialization charged on
        buffered halo sends (it shifts time from collective wait into
        p2p); the qualitative contrast with HYDRO below is what Fig. 4
        shows.
        """
        musa = Musa(get_app("lulesh"))
        res = musa.simulate_burst_full(n_cores=64, n_ranks=16,
                                       n_iterations=2)
        stats = rank_activity_stats(res)
        assert stats.mean_collective_fraction > 0.10

    def test_hydro_low_mpi_share(self):
        musa = Musa(get_app("hydro"))
        res = musa.simulate_burst_full(n_cores=64, n_ranks=16,
                                       n_iterations=2)
        stats = rank_activity_stats(res)
        assert stats.mean_collective_fraction < 0.10

    def test_fractions_bounded(self):
        musa = Musa(get_app("btmz"))
        res = musa.simulate_burst_full(n_cores=32, n_ranks=8, n_iterations=1)
        stats = rank_activity_stats(res)
        total = (stats.compute_fraction + stats.collective_fraction
                 + stats.p2p_fraction)
        assert (total <= 1.0 + 1e-9).all()


class TestRendering:
    def test_core_timeline_shape(self):
        musa = Musa(get_app("spec3d"))
        result = musa.burst_phase(musa.app.representative_phase(), 16,
                                  collect_spans=True)
        art = render_core_timeline(result.spans, 16, result.makespan_ns,
                                   width=40)
        lines = art.splitlines()
        assert len(lines) == 16
        assert all(len(l) == len(lines[0]) for l in lines)
        assert "#" in art and "." in art

    def test_core_timeline_row_cap(self):
        musa = Musa(get_app("spec3d"))
        result = musa.burst_phase(musa.app.representative_phase(), 64,
                                  collect_spans=True)
        art = render_core_timeline(result.spans, 64, result.makespan_ns,
                                   max_cores=8)
        assert "more cores" in art

    def test_rank_timeline_kinds(self):
        segs = (
            TimelineSegment(0, "compute", 0.0, 50.0),
            TimelineSegment(0, "collective", 50.0, 100.0),
            TimelineSegment(1, "compute", 0.0, 100.0),
        )
        art = render_rank_timeline(segs, 2, 100.0, width=20)
        assert "#" in art and "B" in art

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            render_rank_timeline((), 2, 0.0)
