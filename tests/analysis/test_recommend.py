"""Tests for the co-design recommendation engine.

Run on the 2 GHz / 64-core plane, the derived guidelines must match the
paper's Sec. VII conclusions.
"""

import pytest

from repro.analysis import recommend
from repro.apps import APP_NAMES
from repro.config import DesignSpace
from repro.core import run_sweep


@pytest.fixture(scope="module")
def plane():
    space = DesignSpace(frequencies=(2.0,), core_counts=(64,))
    return run_sweep(APP_NAMES, space, processes=2)


@pytest.fixture(scope="module")
def report(plane):
    return recommend(plane, cores=64)


class TestRecommendations:
    def test_all_axes_covered(self, report):
        axes = {r.axis for r in report.recommendations}
        assert {"vector", "cache", "core", "memory", "software"} <= axes

    def test_simd_recommendation_is_512(self, report):
        """Paper: 'it is appropriate to add 512-bit FP computing units'."""
        rec = report.by_axis("vector")[0]
        assert rec.value == 512

    def test_cache_recommendation_is_middle_point(self, report):
        """Paper: '1MB L3 and 512KB L2 per core offer the best trade-off'
        — the 96M step's gain does not justify doubling cache power."""
        rec = report.by_axis("cache")[0]
        assert rec.value == "64M:512K"

    def test_core_recommendation_is_moderate(self, report):
        """Paper: 'moderate OoO capabilities are a good design point'."""
        rec = report.by_axis("core")[0]
        assert rec.value in ("medium", "high")

    def test_memory_recommendation_names_lulesh(self, report):
        """Paper: 'memory bound codes benefit greatly from enhanced
        memory bandwidth' — only LULESH in this mix."""
        rec = report.by_axis("memory")[0]
        assert rec.value == ("lulesh",)

    def test_software_recommendation_targets_worst_occupancy(self, report):
        """Paper: underutilization is the main way to hurt energy
        efficiency — Specfem3D has the worst occupancy."""
        rec = report.by_axis("software")[0]
        assert rec.value == "spec3d"

    def test_render_is_readable(self, report):
        text = report.render()
        assert "Co-design recommendations" in text
        assert "evidence:" in text
        assert len(text.splitlines()) >= 11
