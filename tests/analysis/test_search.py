"""Active-search properties: exact front recovery, budgets, streaming.

The headline contract (also gated by the ``macro.search_dse``
benchmark): run to convergence on the full 864-point paper space, the
search's front is **exactly** the exhaustive sweep's Pareto front —
same (x, y) values, same configs, same order — while evaluating a
strict subset of the space.  Every evaluated point goes through the
same batched evaluator the exhaustive sweep uses, so equality here is
bitwise, not approximate.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import pareto_front, search_front, search_fronts
from repro.apps import get_app
from repro.config import DesignSpace, axis_linspace, axis_range, \
    full_design_space
from repro.core import ResultSet
from repro.core.batch import BatchEvaluator
from repro.core.musa import Musa
from repro.core.store import ResultStore
from repro.obs import MetricsRegistry

APP = "lulesh"
FULL = full_design_space()

#: Small space for cheap behavioral tests: 1 core x 1 cache x 2
#: memories x 2 freqs x 2 vectors x 2 counts = 16 points.
SMALL = DesignSpace(core_labels=("medium",), cache_labels=("64M:512K",),
                    frequencies=(1.5, 2.5), vector_widths=(128, 512),
                    core_counts=(32, 64))

#: Range-axis space (64 points) with enough numeric density for the
#: surrogate to have something to fit.
RANGY = DesignSpace(core_labels=("medium",), cache_labels=("64M:512K",),
                    memory_labels=("4chDDR4",),
                    frequencies=axis_linspace(1.0, 4.0, 8),
                    vector_widths=(256,),
                    core_counts=axis_range(8, 64, 8))


@pytest.fixture(scope="module")
def evaluator():
    """One warmed evaluator shared by every search in this module."""
    return BatchEvaluator(Musa(get_app(APP)))


@pytest.fixture(scope="module")
def exhaustive_front(evaluator):
    records = [r.record() for r in evaluator.evaluate(FULL.configs())]
    return pareto_front(ResultSet(records), APP, cores=None)


def _as_tuples(front):
    return [(p.x, p.y, tuple(sorted(p.config.items()))) for p in front]


class TestExactFrontRecovery:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2 ** 16))
    def test_converged_search_equals_exhaustive_front(
            self, evaluator, exhaustive_front, seed):
        res = search_front(APP, FULL, max_evals=len(FULL), patience=2,
                           seed=seed, evaluator=evaluator,
                           metrics=MetricsRegistry())
        assert res.converged, "search hit the budget before closure"
        assert res.n_evaluated < len(FULL), \
            "search degenerated into the exhaustive sweep"
        assert _as_tuples(res.front) == _as_tuples(exhaustive_front)

    def test_counters_and_bookkeeping(self, evaluator, exhaustive_front):
        reg = MetricsRegistry()
        res = search_front(APP, FULL, max_evals=len(FULL), patience=2,
                           evaluator=evaluator, metrics=reg)
        assert reg.counter("search.evaluated") == res.n_evaluated
        assert reg.counter("search.rounds") == res.rounds > 0
        assert reg.counter("search.front_size") == len(res.front) \
            == len(exhaustive_front)
        assert len(res.results) == res.n_evaluated
        assert 0 < res.evaluated_fraction < 1
        assert len(res.front_point_indices) == len(res.front)
        assert res.front_point_indices == sorted(res.front_point_indices)


class TestBudget:
    def test_budget_is_a_hard_cap(self, evaluator):
        res = search_front(APP, RANGY, max_evals=17, evaluator=evaluator,
                           metrics=MetricsRegistry())
        assert res.n_evaluated <= 17
        assert not res.converged or res.n_evaluated == len(RANGY)

    def test_budget_frac_default(self, evaluator):
        res = search_front(APP, RANGY, budget_frac=0.25,
                           evaluator=evaluator, metrics=MetricsRegistry())
        assert res.n_evaluated <= -(-len(RANGY) * 25 // 100)  # ceil

    def test_full_budget_without_patience_exhausts_space(self, evaluator):
        res = search_front(APP, SMALL, max_evals=len(SMALL), patience=None,
                           evaluator=evaluator, metrics=MetricsRegistry())
        assert res.n_evaluated == len(SMALL) == 16
        assert res.converged
        # With everything evaluated the front is the exhaustive one.
        records = [r.record() for r in evaluator.evaluate(SMALL.configs())]
        ref = pareto_front(ResultSet(records), APP, cores=None)
        assert _as_tuples(res.front) == _as_tuples(ref)


class TestStoreStreaming:
    def test_second_search_runs_entirely_from_store(self, evaluator,
                                                    tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            first = search_front(APP, SMALL, max_evals=len(SMALL),
                                 patience=None, evaluator=evaluator,
                                 store=store, code_version="test",
                                 metrics=MetricsRegistry())
            assert len(store) == first.n_evaluated

        class ExplodingEvaluator:
            def evaluate(self, *a, **k):
                raise AssertionError("engine touched despite warm store")

        with ResultStore(path) as store:
            again = search_front(APP, SMALL, max_evals=len(SMALL),
                                 patience=None,
                                 evaluator=ExplodingEvaluator(),
                                 store=store, code_version="test",
                                 metrics=MetricsRegistry())
            assert len(store) == first.n_evaluated  # nothing re-put
        assert _as_tuples(again.front) == _as_tuples(first.front)
        assert list(again.results) == list(first.results)


class TestSurrogate:
    def test_surrogate_ranking_runs_and_is_counted(self, evaluator):
        reg = MetricsRegistry()
        res = search_front(APP, RANGY, max_evals=len(RANGY), patience=None,
                           batch_size=8, surrogate=True,
                           evaluator=evaluator, metrics=reg)
        assert reg.counter("search.surrogate_rank_calls") >= 1
        assert res.front

    def test_surrogate_does_not_change_the_converged_front(self, evaluator):
        plain = search_front(APP, RANGY, max_evals=len(RANGY),
                             patience=None, evaluator=evaluator,
                             metrics=MetricsRegistry())
        ranked = search_front(APP, RANGY, max_evals=len(RANGY),
                              patience=None, batch_size=8, surrogate=True,
                              evaluator=evaluator,
                              metrics=MetricsRegistry())
        assert _as_tuples(ranked.front) == _as_tuples(plain.front)


class TestValidation:
    def test_bad_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            search_front(APP, SMALL, epsilon=1.5)

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            search_front(APP, SMALL, mode="exact")

    def test_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            search_front(APP, SMALL, batch_size=0)


def test_search_fronts_is_per_app(evaluator):
    out = search_fronts([APP], SMALL, max_evals=8, evaluator=evaluator,
                        metrics=MetricsRegistry())
    assert set(out) == {APP}
    assert out[APP].app == APP
