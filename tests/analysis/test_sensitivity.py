"""Tests for tornado sensitivity analysis."""

import pytest

from repro.analysis import render_tornado, tornado
from repro.apps import get_app
from repro.config import baseline_node
from repro.core import Musa


@pytest.fixture(scope="module")
def btmz_swings(node64):
    return tornado(Musa(get_app("btmz")), node64)


@pytest.fixture(scope="module")
def lulesh_swings(node64):
    return tornado(Musa(get_app("lulesh")), node64)


class TestTornado:
    def test_covers_all_axes(self, btmz_swings):
        assert {s.axis for s in btmz_swings} == {
            "core", "cache", "memory", "frequency", "vector"}

    def test_sorted_by_swing(self, btmz_swings):
        swings = [s.swing for s in btmz_swings]
        assert swings == sorted(swings, reverse=True)

    def test_swings_at_least_one(self, btmz_swings):
        assert all(s.swing >= 1.0 - 1e-9 for s in btmz_swings)

    def test_btmz_memory_is_last(self, btmz_swings):
        """Compute-bound BT-MZ: memory channels move nothing."""
        assert btmz_swings[-1].axis == "memory"
        assert btmz_swings[-1].swing < 1.05

    def test_lulesh_memory_matters(self, lulesh_swings):
        """Bandwidth-bound LULESH: the channel axis has real swing."""
        mem = next(s for s in lulesh_swings if s.axis == "memory")
        assert mem.swing > 1.2
        vec = next(s for s in lulesh_swings if s.axis == "vector")
        assert vec.swing < 1.05  # and SIMD has none

    def test_best_value_orientation(self, btmz_swings):
        freq = next(s for s in btmz_swings if s.axis == "frequency")
        assert freq.high_value == 3.0   # best = lowest time
        assert freq.low_value == 1.5

    def test_energy_metric(self, node64):
        swings = tornado(Musa(get_app("btmz")), node64, metric="energy_j")
        freq = next(s for s in swings if s.axis == "frequency")
        # For energy, 3 GHz is the *worst* frequency (power superlinear).
        assert freq.low_value == 3.0


class TestRender:
    def test_render(self, btmz_swings):
        art = render_tornado(btmz_swings, "time_ns")
        assert "Tornado" in art
        assert "frequency" in art
        assert "#" in art

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_tornado([], "time_ns")
