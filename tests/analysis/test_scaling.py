"""Tests for scaling-curve helpers (Fig. 2)."""

import pytest

from repro.analysis import ScalingCurve, compute_region_scaling, full_app_scaling
from repro.apps import get_app
from repro.core import Musa


class TestScalingCurve:
    def test_efficiency(self):
        c = ScalingCurve(app="x", core_counts=(1, 32, 64),
                         speedups=(1.0, 24.0, 32.0))
        assert c.efficiency(32) == pytest.approx(0.75)
        assert c.efficiency(64) == pytest.approx(0.5)

    def test_unknown_count(self):
        c = ScalingCurve(app="x", core_counts=(1,), speedups=(1.0,))
        with pytest.raises(KeyError):
            c.efficiency(16)


class TestComputeRegionScaling:
    def test_one_core_baseline_is_unity(self):
        c = compute_region_scaling(Musa(get_app("hydro")))
        assert c.speedups[0] == pytest.approx(1.0)

    def test_requires_baseline(self):
        with pytest.raises(ValueError):
            compute_region_scaling(Musa(get_app("hydro")),
                                   core_counts=(32, 64))

    def test_speedups_monotone(self):
        c = compute_region_scaling(Musa(get_app("spmz")))
        assert c.speedups[0] <= c.speedups[1] <= c.speedups[2] * 1.01


class TestFullAppScaling:
    def test_mpi_reduces_efficiency(self):
        """Fig. 2b lies below Fig. 2a for every app."""
        musa = Musa(get_app("btmz"))
        region = compute_region_scaling(musa)
        full = full_app_scaling(musa, n_ranks=16, n_iterations=1)
        assert full.efficiency(64) < region.efficiency(64)

    def test_hydro_keeps_scaling(self):
        musa = Musa(get_app("hydro"))
        full = full_app_scaling(musa, n_ranks=16, n_iterations=1)
        assert full.efficiency(64) > 0.55
