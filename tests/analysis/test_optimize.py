"""Tests for the constrained design-point optimizer."""

import pytest

from repro.analysis import Constraints, optimize_node
from repro.apps import APP_NAMES
from repro.config import DesignSpace
from repro.core import ResultSet, run_sweep


@pytest.fixture(scope="module")
def plane():
    space = DesignSpace(frequencies=(2.0,), core_counts=(64,))
    return run_sweep(APP_NAMES, space, processes=2)


class TestOptimizeNode:
    def test_unconstrained_performance(self, plane):
        choice = optimize_node(plane, objective="time_ns")
        # Fastest shared design: big everything.
        assert choice.config["memory"] == "8chDDR4"
        assert choice.config["vector"] == 512
        assert choice.n_feasible == 72
        assert set(choice.per_app) == set(APP_NAMES)

    def test_power_cap_changes_choice(self, plane):
        free = optimize_node(plane, objective="time_ns")
        capped = optimize_node(
            plane, objective="time_ns",
            constraints=Constraints(power_cap_w=150.0))
        assert capped.n_feasible < free.n_feasible
        # The capped choice must actually respect the cap everywhere.
        for app in APP_NAMES:
            rec = plane.lookup(app=app, **capped.config)
            assert rec["power_total_w"] <= 150.0

    def test_area_cap_limits_cache(self, plane):
        small = optimize_node(
            plane, objective="time_ns",
            constraints=Constraints(area_cap_mm2=420.0))
        assert small.config["cache"] != "96M:1M"

    def test_energy_objective_prefers_frugal_configs(self, plane):
        perf = optimize_node(plane, objective="time_ns")
        energy = optimize_node(plane, objective="energy_j")
        perf_rec = plane.lookup(app="btmz", **perf.config)
        energy_rec = plane.lookup(app="btmz", **energy.config)
        assert energy_rec["energy_j"] <= perf_rec["energy_j"]

    def test_edp_objective(self, plane):
        choice = optimize_node(plane, objective="edp")
        assert choice.score > 0

    def test_app_subset(self, plane):
        lulesh_only = optimize_node(plane, objective="time_ns",
                                    apps=["lulesh"])
        assert lulesh_only.config["memory"] == "8chDDR4"
        assert set(lulesh_only.per_app) == {"lulesh"}

    def test_infeasible_raises(self, plane):
        with pytest.raises(ValueError, match="no feasible"):
            optimize_node(plane,
                          constraints=Constraints(power_cap_w=5.0))

    def test_bad_constraints(self):
        with pytest.raises(ValueError):
            Constraints(power_cap_w=0.0)

    def test_label(self, plane):
        choice = optimize_node(plane)
        assert choice.config["core"] in choice.label
