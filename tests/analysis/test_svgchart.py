"""Tests for the dependency-free SVG bar-chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import grouped_bar_chart


def sample_data():
    return {
        "hydro": {128: 1.0, 256: 1.1, 512: 1.2},
        "spmz": {128: 1.0, 256: 1.5, 512: 1.8},
    }


class TestGroupedBarChart:
    def test_well_formed_xml(self):
        svg = grouped_bar_chart(sample_data(), ["hydro", "spmz"],
                                [128, 256, 512], title="t")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_rect_per_cell_plus_chrome(self):
        svg = grouped_bar_chart(sample_data(), ["hydro", "spmz"],
                                [128, 256, 512])
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        # 6 bars + background + 3 legend swatches
        assert len(rects) == 6 + 1 + 3

    def test_bar_heights_proportional(self):
        svg = grouped_bar_chart({"a": {1: 1.0, 2: 2.0}}, ["a"], [1, 2])
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        bars = [r for r in root.findall(f"{ns}rect")
                if r.find(f"{ns}title") is not None]
        h1, h2 = (float(b.get("height")) for b in bars)
        assert h2 == pytest.approx(2 * h1, rel=0.01)

    def test_missing_cells_skipped(self):
        svg = grouped_bar_chart({"a": {1: 1.0}}, ["a", "b"], [1, 2])
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        bars = [r for r in root.findall(f"{ns}rect")
                if r.find(f"{ns}title") is not None]
        assert len(bars) == 1

    def test_escapes_labels(self):
        svg = grouped_bar_chart({"<evil>": {1: 1.0}}, ["<evil>"], [1],
                                title="a & b")
        assert "<evil>" not in svg.replace("&lt;evil&gt;", "")
        ET.fromstring(svg)  # still parses

    def test_reference_line_present(self):
        svg = grouped_bar_chart(sample_data(), ["hydro"], [128],
                                reference_line=1.0)
        assert "stroke-dasharray" in svg

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({}, [], [1])
        with pytest.raises(ValueError):
            grouped_bar_chart({"a": {}}, ["a"], [1])
        with pytest.raises(ValueError):
            grouped_bar_chart({"a": {1: 1.0}}, ["a"], [1], width=10,
                              height=10)
