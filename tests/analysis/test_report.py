"""Tests for figure/table text rendering."""

import pytest

from repro.analysis import format_panel, format_rows, format_stacked_power


class TestFormatRows:
    def test_alignment(self):
        out = format_rows("T", ["col", "x"], [["a", 1.23456], ["bb", 2.0]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.235" in out
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_none_renders_na(self):
        out = format_rows("T", ["v"], [[None]])
        assert "n/a" in out


class TestFormatPanel:
    def test_cells(self):
        table = {"hydro": {128: (1.0, 0.0), 512: (1.2, 0.05)}}
        out = format_panel("Fig", table, values=(128, 512), value_label="vec")
        assert "hydro" in out
        assert "1.200±0.05" in out
        assert "vec=512" in out


class TestFormatStackedPower:
    def test_total_and_na(self):
        comps = {
            "lulesh": {
                "4ch": {"core_l1": 100.0, "l2_l3": 20.0, "memory": 15.0},
                "hbm": {"core_l1": 100.0, "l2_l3": 20.0, "memory": None},
            }
        }
        out = format_stacked_power("P", comps, values=("4ch", "hbm"))
        assert "135.000" in out
        assert "n/a" in out
