"""Tests for Pareto-front extraction."""

import pytest

from repro.analysis import best_configs, pareto_front
from repro.core import ResultSet


def rs():
    """A small hand-built result set with a known front."""
    out = ResultSet()
    rows = [
        # (vector, time, power, energy): the (100, 10) & (50, 20) &
        # (30, 40) points form the front; (60, 30) and (110, 15) are
        # dominated.
        (128, 100.0, 10.0, 1.0),
        (256, 50.0, 20.0, 1.0),
        (512, 30.0, 40.0, 1.2),
        (1024, 60.0, 30.0, None),
        (2048, 110.0, 15.0, 2.0),
    ]
    for vec, t, p, e in rows:
        out.add(dict(app="a", core="medium", cache="64M:512K",
                     memory="4chDDR4", frequency=2.0, vector=vec, cores=64,
                     time_ns=t, power_total_w=p, energy_j=e))
    return out


class TestParetoFront:
    def test_front_members(self):
        front = pareto_front(rs(), "a")
        labels = [(p.x, p.y) for p in front]
        assert labels == [(30.0, 40.0), (50.0, 20.0), (100.0, 10.0)]

    def test_front_sorted_and_monotone(self):
        front = pareto_front(rs(), "a")
        xs = [p.x for p in front]
        ys = [p.y for p in front]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)

    def test_none_metrics_skipped(self):
        front = pareto_front(rs(), "a", y_metric="energy_j")
        assert all(p.config["vector"] != 1024 for p in front)

    def test_missing_app_raises(self):
        with pytest.raises(ValueError):
            pareto_front(rs(), "zzz")

    def test_point_label(self):
        front = pareto_front(rs(), "a")
        assert "medium/64M:512K/4chDDR4" in front[0].label


class TestBestConfigs:
    def test_objectives(self):
        best = best_configs(rs(), "a")
        assert best["performance"]["vector"] == 512
        assert best["power"]["vector"] == 128
        # EDP: 100*1.0=100, 50*1.0=50, 30*1.2=36, 110*2=220 -> 512 wins.
        assert best["edp"]["vector"] == 512

    def test_energy_skips_none(self):
        best = best_configs(rs(), "a")
        assert best["energy"]["vector"] in (128, 256)

    def test_on_real_sweep(self):
        """The paper's Table II DSE-Best shapes emerge from a real sweep."""
        from repro.apps import get_app
        from repro.config import DesignSpace
        from repro.core import run_sweep

        space = DesignSpace(frequencies=(2.0,), core_counts=(64,))
        results = run_sweep(["lulesh"], space, processes=2)
        best = best_configs(results, "lulesh")
        # LULESH's fastest config uses eight channels (Table II).
        assert best["performance"]["memory"] == "8chDDR4"
        front = pareto_front(results, "lulesh")
        assert len(front) >= 3
