"""Tests for the PCA analysis (Fig. 10)."""

import numpy as np
import pytest

from repro.analysis import PCA_VARIABLES, pca
from repro.core import ResultSet


class TestPca:
    def test_explained_variance_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 5))
        r = pca(x, ["a", "b", "c", "d", "e"])
        assert r.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_variance_sorted_descending(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 4))
        r = pca(x, list("abcd"))
        ev = r.explained_variance_ratio
        assert all(a >= b for a, b in zip(ev, ev[1:]))

    def test_perfectly_correlated_pair_loads_together(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=200)
        noise = rng.normal(size=(200, 2))
        x = np.column_stack([a, -a, noise])
        r = pca(x, ["u", "v", "n1", "n2"])
        # PC0 captures the u/v anticorrelation with opposite signs.
        lu = r.loading("u", 0)
        lv = r.loading("v", 0)
        assert lu * lv < 0
        assert abs(lu) > 0.5 and abs(lv) > 0.5

    def test_constant_column_contributes_nothing(self):
        rng = np.random.default_rng(3)
        x = np.column_stack([rng.normal(size=50), np.full(50, 7.0)])
        r = pca(x, ["var", "const"])
        assert abs(r.loading("const", 0)) < 1e-9

    def test_correlated_with_time_helper(self):
        rng = np.random.default_rng(4)
        knob = rng.normal(size=300)
        time = -knob + 0.05 * rng.normal(size=300)
        other = rng.normal(size=300)
        x = np.column_stack([knob, other, time])
        r = pca(x, ["knob", "other", "Exec. time"])
        drivers = dict(r.correlated_with_time(0))
        assert "knob" in drivers
        assert drivers["knob"] > 0  # increasing knob reduces time

    def test_unknown_variable(self):
        r = pca(np.random.default_rng(5).normal(size=(10, 2)), ["a", "b"])
        with pytest.raises(KeyError):
            r.loading("z", 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pca(np.zeros((1, 2)), ["a", "b"])
        with pytest.raises(ValueError):
            pca(np.zeros((5, 2)), ["a"])


class TestAppPca:
    def test_variables_match_figure(self):
        assert PCA_VARIABLES == ("OoO struct.", "Cache size", "FPU",
                                 "Mem. BW", "Exec. time")

    def test_empty_subset_raises(self):
        from repro.analysis import app_pca

        with pytest.raises(ValueError):
            app_pca(ResultSet(), "hydro")
