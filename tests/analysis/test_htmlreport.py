"""Tests for the single-file HTML report."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import build_html_report
from repro.apps import APP_NAMES
from repro.config import DesignSpace
from repro.core import ResultSet, run_sweep


@pytest.fixture(scope="module")
def plane():
    space = DesignSpace(frequencies=(2.0,), core_counts=(64,))
    return run_sweep(APP_NAMES, space, processes=2)


class TestBuildHtmlReport:
    def test_structure(self, plane):
        doc = build_html_report(plane)
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.count("<svg") >= 4          # vector/cache/core/memory figs
        assert "recommendations" in doc.lower()
        for app in APP_NAMES:
            assert app in doc

    def test_frequency_figure_skipped_without_baseline(self, plane):
        # The 2 GHz plane has no 1.5 GHz baseline: Fig. 9 must be absent.
        doc = build_html_report(plane)
        assert "Fig. 9" not in doc
        assert "Fig. 5" in doc

    def test_svgs_well_formed(self, plane):
        doc = build_html_report(plane)
        start = 0
        count = 0
        while True:
            i = doc.find("<svg", start)
            if i < 0:
                break
            j = doc.find("</svg>", i) + len("</svg>")
            ET.fromstring(doc[i:j])
            start = j
            count += 1
        assert count >= 4

    def test_escapes_title(self, plane):
        doc = build_html_report(plane, title="<script>alert(1)</script>")
        assert "<script>" not in doc

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            build_html_report(ResultSet())

    def test_wrong_cores_rejected(self, plane):
        with pytest.raises(ValueError, match="no records"):
            build_html_report(plane, cores=32)
