"""Tests for trace-level statistics."""

import numpy as np
import pytest

from repro.analysis import (
    message_stats,
    parallelism_profile,
    task_granularity,
    trace_summary,
)
from repro.analysis.tracestats import TaskGranularity
from repro.apps import get_app
from repro.runtime import task_phase
from repro.trace import ComputePhase, TaskRecord


class TestTaskGranularity:
    def test_uniform_tasks(self):
        phase = ComputePhase(phase_id=0, tasks=tuple(
            TaskRecord(kernel="k", duration_ns=100.0) for _ in range(10)))
        g = task_granularity(phase)
        assert g.n_tasks == 10
        assert g.mean_ns == pytest.approx(100.0)
        assert g.max_over_mean == pytest.approx(1.0)

    def test_imbalance_detected(self):
        phase = ComputePhase(phase_id=0, tasks=(
            TaskRecord(kernel="k", duration_ns=10.0),
            TaskRecord(kernel="k", duration_ns=10.0),
            TaskRecord(kernel="k", duration_ns=40.0),
        ))
        assert task_granularity(phase).max_over_mean == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskGranularity.from_durations([])


class TestParallelismProfile:
    def test_independent_tasks_fully_parallel(self):
        phase = ComputePhase(phase_id=0, tasks=tuple(
            TaskRecord(kernel="k", duration_ns=10.0) for _ in range(16)))
        prof = parallelism_profile(phase)
        assert prof.max() == pytest.approx(16.0)
        assert prof.min() == pytest.approx(16.0)

    def test_chain_is_serial(self):
        deps = [(), (0,), (1,), (2,)]
        phase = ComputePhase(phase_id=0, tasks=tuple(
            TaskRecord(kernel="k", duration_ns=10.0, deps=deps[i])
            for i in range(4)))
        prof = parallelism_profile(phase)
        assert prof.max() == pytest.approx(1.0)

    def test_serial_task_gates_profile(self):
        phase = task_phase(0, "k", n_tasks=8, task_ns=10.0,
                           serial_task_ns=10.0, creation_ns=0.0)
        prof = parallelism_profile(phase, n_points=100)
        # First half: the serial segment alone; second half: 8-wide.
        assert prof[:45].max() == pytest.approx(1.0)
        assert prof[60:].max() == pytest.approx(8.0)

    def test_spmz_parallelism_capped_by_zones(self):
        app = get_app("spmz")
        prof = parallelism_profile(app.representative_phase())
        assert prof.max() <= app.n_zones


class TestMessageStats:
    def test_counts(self):
        trace = get_app("hydro").burst_trace(n_ranks=8, n_iterations=2)
        m = message_stats(trace)
        # per rank per iter: phases x neighbours isends.
        n_phases = len(get_app("hydro").iteration_phases())
        from repro.apps import grid_neighbors, rank_grid_dims

        n_nb = len(grid_neighbors(0, rank_grid_dims(8)))
        assert m.n_p2p == 8 * 2 * n_phases * n_nb
        assert m.n_collectives == 8 * 2 * 1
        assert m.mean_message_bytes == get_app("hydro").halo_bytes

    def test_bytes_total(self):
        trace = get_app("hydro").burst_trace(n_ranks=4, n_iterations=1)
        m = message_stats(trace)
        assert m.total_bytes == m.n_p2p * get_app("hydro").halo_bytes


class TestTraceSummary:
    def test_fields(self):
        summary = trace_summary(get_app("lulesh").burst_trace(8, 1))
        for key in ("app", "mean_task_us", "worst_imbalance",
                    "mean_parallelism", "peak_parallelism", "p2p_messages"):
            assert key in summary
        assert summary["app"] == "lulesh"
        assert summary["worst_imbalance"] > 1.2

    def test_spec3d_low_parallelism(self):
        """Fig. 3's root cause, visible straight from the trace."""
        spec = trace_summary(get_app("spec3d").burst_trace(4, 1))
        hydro = trace_summary(get_app("hydro").burst_trace(4, 1))
        assert spec["peak_parallelism"] < 64
        assert hydro["peak_parallelism"] > 256
