"""Tests for reuse-profile stream synthesis (the inverse problem)."""

import numpy as np
import pytest

from repro.trace import ReuseProfile, profile_stream, synthesize_calibrated
from repro.trace.synthesize import (
    _calibrate_sizes,
    _mixture_from_profile,
    synthesize_stream,
)


class TestSynthesizeStream:
    def test_single_component_distance(self):
        stream = synthesize_stream([(100, 1.0)], 5000, seed=0)
        p = profile_stream(stream, max_samples=5000)
        # Circular sweep over 100 lines: distance ~99.
        assert p.miss_ratio(50) > 0.9
        assert p.miss_ratio(200) < 0.05

    def test_cold_fraction_realized(self):
        stream = synthesize_stream([(10, 0.8)], 20_000, cold_fraction=0.2,
                                   seed=1)
        p = profile_stream(stream, max_samples=20_000)
        assert p.cold_fraction == pytest.approx(0.2, abs=0.03)

    def test_components_disjoint(self):
        stream = synthesize_stream([(10, 0.5), (100, 0.5)], 2000, seed=2)
        lines = set(stream // 64)
        # two regions plus maybe cold: ~110 distinct lines
        assert 100 <= len(lines) <= 120

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_stream([], 100, cold_fraction=0.0)
        with pytest.raises(ValueError):
            synthesize_stream([(10, 1.0)], 0)


class TestMixtureExtraction:
    def test_components_recovered(self):
        p = ReuseProfile.from_components([(10, 0.6), (1000, 0.3),
                                          (100000, 0.1)])
        mix = _mixture_from_profile(p)
        assert len(mix) == 3
        dists = sorted(d for d, _ in mix)
        assert dists[0] == pytest.approx(10, rel=0.6)
        assert dists[1] == pytest.approx(1000, rel=0.6)

    def test_weights_preserved(self):
        p = ReuseProfile.from_components([(10, 0.7), (5000, 0.3)])
        mix = _mixture_from_profile(p)
        assert sum(w for _, w in mix) == pytest.approx(1.0, abs=0.01)

    def test_max_components_respected(self):
        comps = [(4.0 ** i * 10, 1.0) for i in range(10)]
        p = ReuseProfile.from_components(comps)
        assert len(_mixture_from_profile(p, max_components=4)) <= 4


class TestCalibration:
    def test_sizes_shrink_to_compensate_interleaving(self):
        # Two components: realized distances exceed sizes, so calibrated
        # sizes must be below targets.
        sizes = _calibrate_sizes([100, 2000], [0.5, 0.5], 0.0)
        assert sizes[0] < 100
        assert sizes[1] < 2000

    def test_single_component_unchanged(self):
        sizes = _calibrate_sizes([500], [1.0], 0.0)
        assert sizes[0] == pytest.approx(500, rel=0.05)


class TestSynthesizeCalibrated:
    @pytest.mark.parametrize("app,kernel", [
        ("hydro", "godunov"), ("spmz", "sp_solve"), ("lulesh", "stress"),
    ])
    def test_app_kernels_match_within_tolerance(self, app, kernel):
        from repro.apps import get_app

        prof = get_app(app).detailed_trace()[kernel].reuse
        rep = synthesize_calibrated(prof, n_accesses=50_000, seed=3)
        assert rep.max_error < 0.06

    def test_representable_horizon_reported(self):
        # A deep component with a short stream cannot be represented.
        p = ReuseProfile.from_components([(10, 0.5), (1e6, 0.5)])
        rep = synthesize_calibrated(p, n_accesses=10_000)
        assert rep.representable_lines <= 1e6
        # Checks only happen below the horizon.
        assert all(c <= rep.representable_lines for c in rep.capacities)

    def test_pure_cold_profile(self):
        p = ReuseProfile.from_components([(1.0, 0.0)], cold_fraction=1.0)
        rep = synthesize_calibrated(p, n_accesses=5000)
        assert rep.measured.cold_fraction > 0.9

    def test_stream_drives_exact_cache(self):
        """End-to-end: synthesized stream through the exact simulator
        reproduces the analytic model's L1 miss ratio."""
        from repro.apps import get_app
        from repro.config import cache_preset
        from repro.uarch import SetAssociativeCache

        prof = get_app("hydro").detailed_trace()["godunov"].reuse
        rep = synthesize_calibrated(prof, n_accesses=50_000, seed=5)
        l1 = cache_preset("64M:512K").l1
        sim = SetAssociativeCache(l1)
        sim.access_stream(rep.stream // 64)
        target = prof.miss_ratio(l1.n_lines, associativity=l1.associativity,
                                 n_sets=l1.n_sets)
        assert sim.stats.miss_ratio == pytest.approx(target, abs=0.05)
