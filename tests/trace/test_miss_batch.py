"""Tests for the batched, scipy-free set-associative miss model.

Three contracts:

* ``ReuseProfile.miss_ratio_batch`` is **bitwise** identical to a loop
  of scalar ``miss_ratio`` calls — the geometry batch axis never
  perturbs a miss ratio in the last ulp;
* the scipy-free binomial-tail / ``erfc`` implementation matches the
  retained scipy reference to floating-point noise (cross-check runs
  only when scipy is installed);
* no simulation hot path imports scipy — a sweep completes with scipy
  imports hard-blocked.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import cache_preset
from repro.trace import InstructionMix, KernelSignature, ReuseProfile
from repro.trace.kernel import (_SMALL_D_MAX, _setassoc_miss_prob,
                                _setassoc_miss_prob_batch,
                                _setassoc_miss_prob_scipy)
from repro.uarch import hierarchy_miss_profile
from repro.uarch.hierarchy import hierarchy_miss_profile_batch

components_st = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
              st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=12)

# Capacities include <= 0 (degenerate: miss ratio 1.0), associativity
# includes 0 (fully associative path) and n_sets includes 0 (derive
# capacity // assoc, the scalar default).
geometry_st = st.tuples(
    st.floats(min_value=-10.0, max_value=1e7, allow_nan=False),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=4096))


class TestMissRatioBatchBitwise:
    @settings(max_examples=150, deadline=None)
    @given(components=components_st,
           cold=st.floats(min_value=0.0, max_value=0.9),
           geoms=st.lists(geometry_st, min_size=1, max_size=10))
    def test_batch_matches_scalar_bitwise(self, components, cold, geoms):
        prof = ReuseProfile.from_components(components, cold_fraction=cold)
        caps = [g[0] for g in geoms]
        assocs = [g[1] for g in geoms]
        sets = [g[2] for g in geoms]
        out = prof.miss_ratio_batch(caps, assocs, sets)
        for i, (c, a, s) in enumerate(geoms):
            ref = prof.miss_ratio(c, a, s)
            assert out[i] == ref, (i, c, a, s)

    def test_all_empty_capacities(self):
        prof = ReuseProfile.from_components([(100.0, 1.0)])
        out = prof.miss_ratio_batch([0.0, -5.0], [4, 0], [16, 0])
        assert np.array_equal(out, [1.0, 1.0])

    def test_geometry_arrays_must_align(self):
        prof = ReuseProfile.from_components([(100.0, 1.0)])
        with pytest.raises(ValueError):
            prof.miss_ratio_batch([100.0, 200.0], [4], [16])

    @settings(max_examples=75, deadline=None)
    @given(distances=st.lists(
               st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
               min_size=1, max_size=20),
           geoms=st.lists(st.tuples(st.integers(1, 32),
                                    st.integers(1, 4096)),
                          min_size=1, max_size=6))
    def test_setassoc_helper_batch_matches_stacked_scalar(self, distances,
                                                          geoms):
        d = np.asarray(distances, dtype=np.float64)
        assocs = np.array([a for a, _ in geoms], dtype=np.int64)
        sets = np.array([s for _, s in geoms], dtype=np.int64)
        got = _setassoc_miss_prob_batch(d, assocs, sets)
        ref = np.stack([_setassoc_miss_prob(d, int(a), int(s))
                        for a, s in geoms])
        assert np.array_equal(got, ref)


def _sig(components, cold=0.0):
    return KernelSignature(
        name="k", instr_per_unit=1000.0,
        mix=InstructionMix(fp=0.3, int_alu=0.2, load=0.25, store=0.1,
                           branch=0.1, other=0.05),
        ilp=2.0, vec_fraction=0.5, trip_count=64, mlp=4.0,
        reuse=ReuseProfile.from_components(components, cold_fraction=cold),
    )


class TestHierarchyBatchBitwise:
    def test_batch_matches_scalar_over_presets_and_shares(self):
        sig = _sig([(100, 0.4), (5000, 0.3), (24_000, 0.2), (5e6, 0.1)],
                   cold=0.02)
        hierarchies, shares = [], []
        for label in ("64M:512K", "96M:1M", "32M:256K"):
            for share in (1, 16, 64):
                hierarchies.append(cache_preset(label))
                shares.append(share)
        batch = hierarchy_miss_profile_batch(sig, hierarchies, shares)
        for got, h, s in zip(batch, hierarchies, shares):
            ref = hierarchy_miss_profile(sig, h, l3_share_cores=s)
            assert got == ref, (h, s)

    def test_memo_shares_distinct_pairs_across_batches(self):
        sig = _sig([(2000, 1.0)])
        h = cache_preset("64M:512K")
        memo = {}
        first = hierarchy_miss_profile_batch(sig, [h, h], [1, 1], memo=memo)
        assert len(memo) == 1
        again = hierarchy_miss_profile_batch(sig, [h], [1], memo=memo)
        assert again[0] == first[0] == first[1]


class TestScipyCrossCheck:
    """The scipy-free tail rewrite vs the retained scipy reference."""

    @settings(max_examples=50, deadline=None)
    @given(distances=st.lists(
               st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
               min_size=1, max_size=16),
           assoc=st.integers(min_value=1, max_value=32),
           n_sets=st.integers(min_value=1, max_value=4096))
    def test_matches_scipy_reference(self, distances, assoc, n_sets):
        pytest.importorskip("scipy")
        d = np.asarray(distances, dtype=np.float64)
        got = _setassoc_miss_prob(d, assoc, n_sets)
        ref = _setassoc_miss_prob_scipy(d, assoc, n_sets)
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-9)

    def test_both_branches_covered(self):
        pytest.importorskip("scipy")
        # Straddle the exact-table / normal-approximation threshold.
        d = np.array([0.0, 1.0, _SMALL_D_MAX, _SMALL_D_MAX + 1, 1e5])
        got = _setassoc_miss_prob(d, 8, 512)
        ref = _setassoc_miss_prob_scipy(d, 8, 512)
        np.testing.assert_allclose(got, ref, rtol=0, atol=1e-9)


class TestScipyFreeHotPath:
    def test_sweep_runs_with_scipy_import_blocked(self):
        # A fresh interpreter with scipy imports hard-blocked must run a
        # fast-mode sweep end to end, including both miss-model branches.
        # This is the enforcement half of dropping scipy from the
        # runtime dependencies.
        code = textwrap.dedent("""
            import sys

            class _BlockScipy:
                def find_spec(self, name, path=None, target=None):
                    if name == "scipy" or name.startswith("scipy."):
                        raise ImportError("scipy is blocked in this test")
                    return None

            sys.meta_path.insert(0, _BlockScipy())
            sys.modules.pop("scipy", None)

            import numpy as np
            from repro.config import DesignSpace
            from repro.core import run_sweep
            from repro.trace.kernel import _SMALL_D_MAX, _setassoc_miss_prob

            # Exercise both the exact-table and the normal-tail branch.
            d = np.array([1.0, float(_SMALL_D_MAX) + 1, 1e5])
            p = _setassoc_miss_prob(d, 8, 512)
            assert np.all((p >= 0.0) & (p <= 1.0))

            space = DesignSpace(core_labels=("medium",),
                                cache_labels=("64M:512K",),
                                memory_labels=("4chDDR4",),
                                frequencies=(2.0,), vector_widths=(128,),
                                core_counts=(64,))
            res = run_sweep(["spmz"], space, processes=1)
            assert len(list(res)) == 1
            assert "scipy" not in sys.modules
            print("scipy-free hot path OK")
        """)
        src_root = Path(repro.__file__).resolve().parents[1]
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True,
                              env={"PYTHONPATH": str(src_root)})
        assert proc.returncode == 0, proc.stderr
        assert "scipy-free hot path OK" in proc.stdout
