"""Tests for synthetic address stream generators."""

import numpy as np
import pytest

from repro.trace.streams import (
    interleave,
    multi_array,
    random_uniform,
    sequential_sweep,
    stencil1d,
    strided,
    zipf,
)


class TestSequentialSweep:
    def test_shape_and_range(self):
        s = sequential_sweep(ws_bytes=800, n_sweeps=3, elem_bytes=8)
        assert len(s) == 300
        assert s.min() == 0 and s.max() == 792

    def test_repeats_exactly(self):
        s = sequential_sweep(ws_bytes=160, n_sweeps=2, elem_bytes=8)
        np.testing.assert_array_equal(s[:20], s[20:])

    def test_base_offset(self):
        s = sequential_sweep(ws_bytes=80, n_sweeps=1, base=1 << 20)
        assert s.min() == 1 << 20


class TestStrided:
    def test_stride_wraps(self):
        s = strided(ws_bytes=256, stride_bytes=64, n_accesses=8)
        assert list(s) == [0, 64, 128, 192, 0, 64, 128, 192]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            strided(ws_bytes=0, stride_bytes=64, n_accesses=8)


class TestRandomAndZipf:
    def test_random_deterministic_by_seed(self):
        a = random_uniform(ws_bytes=1 << 16, n_accesses=100, seed=7)
        b = random_uniform(ws_bytes=1 << 16, n_accesses=100, seed=7)
        np.testing.assert_array_equal(a, b)
        c = random_uniform(ws_bytes=1 << 16, n_accesses=100, seed=8)
        assert not np.array_equal(a, c)

    def test_random_within_working_set(self):
        s = random_uniform(ws_bytes=1024, n_accesses=500, seed=0)
        assert s.max() < 1024 and s.min() >= 0

    def test_zipf_is_skewed(self):
        s = zipf(ws_bytes=8 * 10000, n_accesses=20000, alpha=1.3, seed=0)
        _, counts = np.unique(s, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Top 1% of elements take far more than 1% of accesses.
        top = counts[: max(1, len(counts) // 100)].sum()
        assert top / counts.sum() > 0.05

    def test_zipf_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            zipf(ws_bytes=800, n_accesses=10, alpha=0.0)


class TestStencil:
    def test_touches_neighbours(self):
        s = stencil1d(n_points=4, radius=1, n_iters=1)
        # per point: 3 reads + 1 write = 4 accesses
        assert len(s) == 16

    def test_write_array_disjoint(self):
        s = stencil1d(n_points=10, radius=1, n_iters=1)
        reads = s.reshape(-1, 4)[:, :3]
        writes = s.reshape(-1, 4)[:, 3]
        assert writes.min() > reads.max()

    def test_rejects_single_array(self):
        with pytest.raises(ValueError):
            stencil1d(n_points=4, n_arrays=1)


class TestMultiArray:
    def test_working_set_scales_with_arrays(self):
        s1 = multi_array(n_points=100, n_arrays=2, n_iters=1)
        s2 = multi_array(n_points=100, n_arrays=10, n_iters=1)
        assert len(set(s2 // 64)) > len(set(s1 // 64)) * 3

    def test_length(self):
        s = multi_array(n_points=50, n_arrays=4, n_iters=3)
        assert len(s) == 50 * 4 * 3


class TestInterleave:
    def test_preserves_order_within_stream(self):
        a = np.arange(50, dtype=np.int64) * 8
        b = np.arange(30, dtype=np.int64) * 8
        out = interleave([a, b], seed=0)
        assert len(out) == 80
        # Recover stream-a elements (disjoint region) and check order.
        a_vals = out[out < 400]
        np.testing.assert_array_equal(a_vals, a)

    def test_disjoint_regions(self):
        a = np.zeros(10, dtype=np.int64)
        b = np.zeros(10, dtype=np.int64)
        out = interleave([a, b], seed=1)
        assert len(set(out)) == 2  # relocated to two distinct bases

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            interleave([])
