"""Tests for burst-trace event records."""

import pytest

from repro.trace import ComputePhase, MpiCall, TaskRecord


class TestTaskRecord:
    def test_basic(self):
        t = TaskRecord(kernel="k", duration_ns=100.0, deps=(0, 1),
                       work_units=2.0)
        assert t.kernel == "k"
        assert t.deps == (0, 1)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TaskRecord(kernel="k", duration_ns=-1.0)

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            TaskRecord(kernel="k", duration_ns=1.0, work_units=-1.0)

    def test_zero_work_allowed(self):
        # Empty partitions of an irregular decomposition are legal.
        t = TaskRecord(kernel="k", duration_ns=1.0, work_units=0.0)
        assert t.work_units == 0.0

    def test_rejects_negative_dep(self):
        with pytest.raises(ValueError):
            TaskRecord(kernel="k", duration_ns=1.0, deps=(-1,))


class TestComputePhase:
    def _tasks(self, n, deps=None):
        return tuple(
            TaskRecord(kernel="k", duration_ns=10.0,
                       deps=deps[i] if deps else ())
            for i in range(n)
        )

    def test_totals(self):
        p = ComputePhase(phase_id=0, tasks=self._tasks(4))
        assert p.total_task_ns == pytest.approx(40.0)
        assert p.n_tasks == 4

    def test_valid_backward_deps(self):
        deps = [(), (0,), (0, 1), (2,)]
        p = ComputePhase(phase_id=0, tasks=self._tasks(4, deps))
        assert p.tasks[3].deps == (2,)

    def test_rejects_forward_dep(self):
        deps = [(1,), ()]
        with pytest.raises(ValueError, match="earlier tasks"):
            ComputePhase(phase_id=0, tasks=self._tasks(2, deps))

    def test_rejects_self_dep(self):
        deps = [(0,)]
        with pytest.raises(ValueError):
            ComputePhase(phase_id=0, tasks=self._tasks(1, deps))

    def test_rejects_negative_overheads(self):
        with pytest.raises(ValueError):
            ComputePhase(phase_id=0, tasks=self._tasks(1), serial_ns=-1.0)

    def test_empty_phase_allowed(self):
        p = ComputePhase(phase_id=0, tasks=(), serial_ns=100.0)
        assert p.total_task_ns == 0.0


class TestMpiCall:
    def test_p2p_requires_peer(self):
        with pytest.raises(ValueError, match="requires a peer"):
            MpiCall(kind="send", size_bytes=10)

    def test_nonblocking_requires_request(self):
        with pytest.raises(ValueError, match="request"):
            MpiCall(kind="isend", peer=1, size_bytes=10)

    def test_wait_requires_request(self):
        with pytest.raises(ValueError):
            MpiCall(kind="wait")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown MPI call"):
            MpiCall(kind="sendrecv", peer=1)

    def test_collective_flag(self):
        assert MpiCall(kind="allreduce", size_bytes=8).is_collective
        assert not MpiCall(kind="send", peer=0, size_bytes=8).is_collective

    def test_barrier_zero_payload(self):
        b = MpiCall(kind="barrier")
        assert b.size_bytes == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            MpiCall(kind="bcast", size_bytes=-1)
