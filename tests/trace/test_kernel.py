"""Tests for kernel signatures and reuse profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import InstructionMix, KernelSignature, ReuseProfile


class TestInstructionMix:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            InstructionMix(fp=0.5, int_alu=0.5, load=0.5, store=0.0,
                           branch=0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionMix(fp=1.2, int_alu=-0.2, load=0.0, store=0.0,
                           branch=0.0)

    def test_mem_fraction(self):
        m = InstructionMix(fp=0.3, int_alu=0.2, load=0.25, store=0.15,
                           branch=0.1)
        assert m.mem == pytest.approx(0.40)


class TestReuseProfileConstruction:
    def test_from_components_normalizes(self):
        p = ReuseProfile.from_components([(10, 2.0), (1000, 1.0)],
                                         cold_fraction=0.1)
        assert p.weights.sum() + p.cold_fraction == pytest.approx(1.0)

    def test_from_distances(self):
        d = np.array([1, 2, 4, 8, 1000, 1000, 50000])
        p = ReuseProfile.from_distances(d, n_cold=3)
        assert p.cold_fraction == pytest.approx(0.3)
        assert p.weights.sum() == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReuseProfile.from_components([])

    def test_all_cold(self):
        p = ReuseProfile.from_distances(np.array([]), n_cold=5)
        assert p.cold_fraction == 1.0
        assert p.miss_ratio(1e9) == pytest.approx(1.0)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            ReuseProfile([0.0, 1.0, 1.0], [0.5, 0.5])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            ReuseProfile([0.0, 1.0, 2.0], [0.5, -0.1])


class TestMissRatio:
    def test_tiny_cache_misses_everything_beyond_line_reuse(self):
        p = ReuseProfile.from_components([(1000, 1.0)])
        assert p.miss_ratio(10) == pytest.approx(1.0, abs=0.01)

    def test_huge_cache_only_cold_misses(self):
        p = ReuseProfile.from_components([(1000, 1.0)], cold_fraction=0.05)
        assert p.miss_ratio(1e9) == pytest.approx(0.05, abs=1e-6)

    def test_monotone_in_capacity(self):
        p = ReuseProfile.from_components(
            [(10, 0.5), (1000, 0.3), (100000, 0.2)])
        caps = [16, 128, 1024, 8192, 65536, 1 << 20]
        ratios = [p.miss_ratio(c) for c in caps]
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_set_associative_close_to_full_for_high_assoc(self):
        p = ReuseProfile.from_components([(100, 0.7), (5000, 0.3)])
        full = p.miss_ratio(8192)
        sa = p.miss_ratio(8192, associativity=16, n_sets=512)
        assert sa == pytest.approx(full, abs=0.08)

    def test_set_associative_worse_than_full(self):
        # Low associativity causes conflict misses the full-assoc model
        # doesn't have.
        p = ReuseProfile.from_components([(3000, 1.0)])
        full = p.miss_ratio(8192)
        sa = p.miss_ratio(8192, associativity=2, n_sets=4096)
        assert sa >= full - 1e-9

    @given(st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=30, deadline=None)
    def test_ratio_always_in_unit_interval(self, capacity):
        p = ReuseProfile.from_components(
            [(50, 0.4), (2000, 0.4), (1e6, 0.2)], cold_fraction=0.01)
        r = p.miss_ratio(capacity)
        assert 0.0 <= r <= 1.0

    def test_scaled_shifts_knee(self):
        p = ReuseProfile.from_components([(1000, 1.0)])
        p2 = p.scaled(10.0)
        assert p.miss_ratio(2000) < 0.1
        assert p2.miss_ratio(2000) > 0.9

    def test_mean_distance(self):
        p = ReuseProfile.from_components([(1000, 1.0)])
        assert 500 < p.mean_distance() < 2000


class TestKernelSignature:
    def _mix(self):
        return InstructionMix(fp=0.3, int_alu=0.2, load=0.25, store=0.1,
                              branch=0.1, other=0.05)

    def _sig(self, **kw):
        defaults = dict(
            name="k", instr_per_unit=1000.0, mix=self._mix(), ilp=3.0,
            vec_fraction=0.5, trip_count=64, mlp=4.0,
            reuse=ReuseProfile.from_components([(10, 1.0)]),
        )
        defaults.update(kw)
        return KernelSignature(**defaults)

    def test_instructions(self):
        assert self._sig().instructions(3.0) == pytest.approx(3000.0)

    def test_instructions_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            self._sig().instructions(0.0)

    @pytest.mark.parametrize("field,value", [
        ("instr_per_unit", 0.0), ("ilp", 0.0), ("vec_fraction", 1.5),
        ("trip_count", 0.5), ("mlp", 0.0), ("bytes_per_access", 0.0),
        ("row_hit_rate", 1.5),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            self._sig(**{field: value})
