"""Tests for detailed trace containers."""

import pytest

from repro.trace import DetailedTrace, InstructionMix, KernelSignature, ReuseProfile


def _sig(name):
    return KernelSignature(
        name=name, instr_per_unit=100.0,
        mix=InstructionMix(fp=0.3, int_alu=0.2, load=0.25, store=0.1,
                           branch=0.1, other=0.05),
        ilp=2.0, vec_fraction=0.5, trip_count=16, mlp=2.0,
        reuse=ReuseProfile.from_components([(10, 1.0)]),
    )


class TestDetailedTrace:
    def test_lookup(self):
        t = DetailedTrace(app="x", kernels={"a": _sig("a"), "b": _sig("b")})
        assert t["a"].name == "a"
        assert "b" in t
        assert t.names() == ("a", "b")

    def test_missing_kernel_message(self):
        t = DetailedTrace(app="x", kernels={"a": _sig("a")})
        with pytest.raises(KeyError, match="no kernel 'z'"):
            t["z"]

    def test_covers(self):
        t = DetailedTrace(app="x", kernels={"a": _sig("a"), "b": _sig("b")})
        assert t.covers(["a", "b"])
        assert not t.covers(["a", "c"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DetailedTrace(app="x", kernels={})

    def test_rejects_name_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            DetailedTrace(app="x", kernels={"a": _sig("b")})

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            DetailedTrace(app="x", kernels={"a": object()})

    def test_iterates_kernel_names(self):
        t = DetailedTrace(app="x", kernels={"a": _sig("a")})
        assert list(t) == ["a"]
