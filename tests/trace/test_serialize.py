"""Round-trip tests for trace serialization."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.trace import (
    burst_from_dict,
    burst_to_dict,
    detailed_from_dict,
    detailed_to_dict,
    load_burst,
    load_detailed,
    save_burst,
    save_detailed,
)


@pytest.fixture(scope="module")
def small_burst():
    return get_app("spmz").burst_trace(n_ranks=4, n_iterations=1)


@pytest.fixture(scope="module")
def detailed():
    return get_app("lulesh").detailed_trace()


class TestBurstRoundTrip:
    def test_dict_round_trip(self, small_burst):
        again = burst_from_dict(burst_to_dict(small_burst))
        assert again.app == small_burst.app
        assert again.n_ranks == small_burst.n_ranks
        assert again.phase_counts() == small_burst.phase_counts()
        # Event-level equality on one rank.
        orig = small_burst.ranks[1].events
        back = again.ranks[1].events
        assert len(orig) == len(back)
        for a, b in zip(orig, back):
            assert type(a) is type(b)

    def test_compute_totals_preserved(self, small_burst):
        again = burst_from_dict(burst_to_dict(small_burst))
        for a, b in zip(small_burst.ranks, again.ranks):
            assert a.total_compute_ns == pytest.approx(b.total_compute_ns)
            assert a.total_mpi_bytes == b.total_mpi_bytes

    def test_file_round_trip(self, small_burst, tmp_path):
        path = tmp_path / "trace.json"
        save_burst(small_burst, path)
        again = load_burst(path)
        assert again.n_ranks == small_burst.n_ranks

    def test_gzip_round_trip(self, small_burst, tmp_path):
        path = tmp_path / "trace.json.gz"
        save_burst(small_burst, path)
        again = load_burst(path)
        assert again.app == small_burst.app
        # gz file should actually be compressed (much smaller than json)
        plain = tmp_path / "plain.json"
        save_burst(small_burst, plain)
        assert path.stat().st_size < plain.stat().st_size

    def test_type_mismatch_rejected(self, small_burst, detailed):
        with pytest.raises(ValueError, match="expected a 'detailed'"):
            detailed_from_dict(burst_to_dict(small_burst))
        with pytest.raises(ValueError, match="expected a 'burst'"):
            burst_from_dict(detailed_to_dict(detailed))


class TestDetailedRoundTrip:
    def test_dict_round_trip(self, detailed):
        again = detailed_from_dict(detailed_to_dict(detailed))
        assert again.names() == detailed.names()
        for name in detailed.names():
            a, b = detailed[name], again[name]
            assert a.instr_per_unit == b.instr_per_unit
            assert a.ilp == b.ilp
            assert a.vec_fraction == b.vec_fraction
            assert a.row_hit_rate == b.row_hit_rate
            np.testing.assert_allclose(a.reuse.edges, b.reuse.edges)
            np.testing.assert_allclose(a.reuse.weights, b.reuse.weights)

    def test_miss_ratios_preserved(self, detailed):
        again = detailed_from_dict(detailed_to_dict(detailed))
        for name in detailed.names():
            for cap in (512, 8192, 1 << 20):
                assert detailed[name].reuse.miss_ratio(cap) == pytest.approx(
                    again[name].reuse.miss_ratio(cap), rel=1e-9)

    def test_file_round_trip(self, detailed, tmp_path):
        path = tmp_path / "detail.json"
        save_detailed(detailed, path)
        assert load_detailed(path).names() == detailed.names()

    def test_version_check(self, detailed):
        d = detailed_to_dict(detailed)
        d["version"] = 99
        with pytest.raises(ValueError, match="version"):
            detailed_from_dict(d)
