"""Tests for the exact stack-distance profiler (Fenwick-tree algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import FenwickTree, profile_stream, stack_distances
from repro.trace.streams import random_uniform, sequential_sweep


class TestFenwickTree:
    def test_point_updates_and_prefix_sums(self):
        t = FenwickTree(10)
        t.add(0, 5)
        t.add(4, 3)
        t.add(9, 1)
        assert t.prefix_sum(0) == 5
        assert t.prefix_sum(3) == 5
        assert t.prefix_sum(4) == 8
        assert t.prefix_sum(9) == 9
        assert t.total() == 9

    def test_range_sum(self):
        t = FenwickTree(8)
        for i in range(8):
            t.add(i, i)
        assert t.range_sum(2, 5) == 2 + 3 + 4 + 5
        assert t.range_sum(0, 7) == sum(range(8))

    def test_negative_delta(self):
        t = FenwickTree(4)
        t.add(2, 5)
        t.add(2, -5)
        assert t.total() == 0

    def test_out_of_range(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FenwickTree(0)

    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(-5, 5)),
                    max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_array(self, updates):
        t = FenwickTree(32)
        ref = np.zeros(32, dtype=np.int64)
        for i, d in updates:
            t.add(i, d)
            ref[i] += d
        for q in (0, 5, 15, 31):
            assert t.prefix_sum(q) == ref[: q + 1].sum()


class TestStackDistances:
    def test_known_sequence(self):
        # lines: A B C A B C (64-byte lines)
        addrs = np.array([0, 64, 128, 0, 64, 128])
        dists, n_cold = stack_distances(addrs)
        assert n_cold == 3
        # each reuse saw exactly 2 distinct other lines in between
        assert list(dists) == [2, 2, 2]

    def test_immediate_reuse_distance_zero(self):
        addrs = np.array([0, 0, 0, 8])  # same line (offset < 64)
        dists, n_cold = stack_distances(addrs)
        assert n_cold == 1
        assert list(dists) == [0, 0, 0]

    def test_lru_stack_property(self):
        # A B A: B's reuse never happens; A reused over 1 distinct line.
        addrs = np.array([0, 64, 0])
        dists, n_cold = stack_distances(addrs)
        assert n_cold == 2
        assert list(dists) == [1]

    def test_all_cold(self):
        addrs = np.arange(10) * 64
        dists, n_cold = stack_distances(addrs)
        assert n_cold == 10
        assert len(dists) == 0

    def test_empty(self):
        dists, n_cold = stack_distances(np.array([], dtype=np.int64))
        assert n_cold == 0 and len(dists) == 0

    def test_sweep_distance_equals_working_set(self):
        # Two sweeps over W lines: every reuse has distance exactly W-1.
        w_lines = 50
        stream = sequential_sweep(ws_bytes=w_lines * 64, n_sweeps=2,
                                  elem_bytes=64)
        dists, n_cold = stack_distances(stream)
        assert n_cold == w_lines
        assert np.all(dists == w_lines - 1)

    @given(st.integers(2, 30), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_sweep_property(self, w_lines, n_sweeps):
        stream = sequential_sweep(ws_bytes=w_lines * 64, n_sweeps=n_sweeps,
                                  elem_bytes=64)
        dists, n_cold = stack_distances(stream)
        assert n_cold == w_lines
        assert len(dists) == w_lines * (n_sweeps - 1)
        assert np.all(dists == w_lines - 1)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_reference(self, lines):
        """Fenwick implementation == brute-force distinct-count."""
        addrs = np.array(lines, dtype=np.int64) * 64
        dists, n_cold = stack_distances(addrs)
        # Naive reference
        ref, last, cold = [], {}, 0
        for i, ln in enumerate(lines):
            if ln in last:
                ref.append(len(set(lines[last[ln] + 1: i])))
            else:
                cold += 1
            last[ln] = i
        assert n_cold == cold
        assert list(dists) == ref

    def test_distances_bounded_by_distinct_lines(self):
        stream = random_uniform(ws_bytes=64 * 128, n_accesses=2000, seed=1)
        dists, _ = stack_distances(stream)
        assert dists.max() < 128


class TestProfileStream:
    def test_profile_of_sweep_has_knee_at_ws(self):
        w_lines = 200
        stream = sequential_sweep(ws_bytes=w_lines * 64, n_sweeps=5,
                                  elem_bytes=8)
        p = profile_stream(stream)
        # A cache bigger than the working set captures (almost) all reuse.
        assert p.miss_ratio(2 * w_lines) < 0.1
        # A cache much smaller misses each sweep (line-level reuse of the
        # 8 doubles within a line still hits).
        assert p.miss_ratio(w_lines // 4) > p.miss_ratio(2 * w_lines)

    def test_windowing_long_stream(self):
        stream = sequential_sweep(ws_bytes=64 * 100, n_sweeps=4, elem_bytes=8)
        p_full = profile_stream(stream)
        p_win = profile_stream(stream, max_samples=1000, seed=3)
        # Windowed profile stays qualitatively equivalent.
        assert abs(p_full.miss_ratio(400) - p_win.miss_ratio(400)) < 0.25

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            stack_distances(np.zeros((3, 3), dtype=np.int64))
