"""Tests for burst trace containers."""

import pytest

from repro.trace import BurstTrace, ComputePhase, MpiCall, RankTrace, TaskRecord


def _phase(n_tasks=2, phase_id=0):
    return ComputePhase(
        phase_id=phase_id,
        tasks=tuple(TaskRecord(kernel="k", duration_ns=10.0)
                    for _ in range(n_tasks)),
    )


class TestRankTrace:
    def test_partitions_events(self):
        rt = RankTrace(rank=0, events=(
            _phase(), MpiCall(kind="barrier"), _phase(phase_id=1),
        ))
        assert len(rt.compute_phases()) == 2
        assert len(rt.mpi_calls()) == 1

    def test_total_compute(self):
        rt = RankTrace(rank=0, events=(_phase(3),))
        assert rt.total_compute_ns == pytest.approx(30.0)

    def test_bytes_counts_sends_only(self):
        rt = RankTrace(rank=0, events=(
            MpiCall(kind="isend", peer=1, size_bytes=100, request=0),
            MpiCall(kind="irecv", peer=1, size_bytes=999, request=1),
            MpiCall(kind="wait", request=0),
            MpiCall(kind="wait", request=1),
        ))
        assert rt.total_mpi_bytes == 100

    def test_rejects_unwaited_request(self):
        with pytest.raises(ValueError, match="unwaited"):
            RankTrace(rank=0, events=(
                MpiCall(kind="isend", peer=1, size_bytes=1, request=0),
            ))

    def test_rejects_wait_on_unknown_request(self):
        with pytest.raises(ValueError, match="unknown request"):
            RankTrace(rank=0, events=(MpiCall(kind="wait", request=5),))

    def test_rejects_request_reuse_before_wait(self):
        with pytest.raises(ValueError, match="reused"):
            RankTrace(rank=0, events=(
                MpiCall(kind="isend", peer=1, size_bytes=1, request=0),
                MpiCall(kind="irecv", peer=1, size_bytes=1, request=0),
            ))

    def test_rejects_negative_rank(self):
        with pytest.raises(ValueError):
            RankTrace(rank=-1, events=())


class TestBurstTrace:
    def _trace(self, n_ranks=2):
        ranks = tuple(
            RankTrace(rank=r, events=(_phase(), MpiCall(kind="barrier")))
            for r in range(n_ranks)
        )
        return BurstTrace(app="test", ranks=ranks)

    def test_basic(self):
        t = self._trace(4)
        assert t.n_ranks == 4
        assert t.kernel_names() == ["k"]
        assert t.phase_counts() == (4, 4)

    def test_rejects_sparse_ranks(self):
        ranks = (RankTrace(rank=0, events=()), RankTrace(rank=2, events=()))
        with pytest.raises(ValueError, match="dense"):
            BurstTrace(app="x", ranks=ranks)

    def test_rejects_out_of_range_peer(self):
        ranks = (
            RankTrace(rank=0, events=(
                MpiCall(kind="isend", peer=5, size_bytes=1, request=0),
                MpiCall(kind="wait", request=0),
            )),
        )
        with pytest.raises(ValueError, match="peer"):
            BurstTrace(app="x", ranks=ranks)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BurstTrace(app="x", ranks=())

    def test_iteration(self):
        t = self._trace(3)
        assert [rt.rank for rt in t] == [0, 1, 2]
