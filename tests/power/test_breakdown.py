"""Tests for the figure-component power breakdown."""

import pytest

from repro.power import PowerBreakdown


class TestPowerBreakdown:
    def test_total(self):
        p = PowerBreakdown(core_l1_w=100.0, l2_l3_w=20.0, memory_w=15.0)
        assert p.total_w == pytest.approx(135.0)

    def test_hbm_total_is_none(self):
        p = PowerBreakdown(core_l1_w=100.0, l2_l3_w=20.0, memory_w=None)
        assert p.total_w is None
        assert p.known_total_w == pytest.approx(120.0)

    def test_energy(self):
        p = PowerBreakdown(core_l1_w=100.0, l2_l3_w=20.0, memory_w=15.0)
        assert p.energy_j(10.0) == pytest.approx(1350.0)

    def test_energy_none_for_hbm(self):
        p = PowerBreakdown(core_l1_w=100.0, l2_l3_w=20.0, memory_w=None)
        assert p.energy_j(10.0) is None

    def test_fraction(self):
        p = PowerBreakdown(core_l1_w=70.0, l2_l3_w=20.0, memory_w=10.0)
        assert p.fraction("l2_l3") == pytest.approx(0.20)
        assert p.fraction("core_l1") == pytest.approx(0.70)
        assert p.fraction("memory") == pytest.approx(0.10)

    def test_addition(self):
        a = PowerBreakdown(10.0, 2.0, 3.0)
        b = PowerBreakdown(5.0, 1.0, 1.0)
        c = a + b
        assert c.core_l1_w == 15.0
        assert c.memory_w == 4.0

    def test_addition_propagates_none(self):
        a = PowerBreakdown(10.0, 2.0, None)
        b = PowerBreakdown(5.0, 1.0, 1.0)
        assert (a + b).memory_w is None

    def test_scaled(self):
        p = PowerBreakdown(10.0, 2.0, 3.0).scaled(2.0)
        assert p.total_w == pytest.approx(30.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PowerBreakdown(-1.0, 0.0, 0.0)

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            PowerBreakdown(1.0, 1.0, 1.0).energy_j(-1.0)
