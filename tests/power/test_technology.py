"""Tests for the 22nm V/f technology model."""

import pytest

from repro.power import (
    dynamic_scale,
    energy_scale,
    leakage_scale,
    voltage_for_frequency,
)


class TestVoltageCurve:
    def test_reference_point(self):
        assert voltage_for_frequency(2.0) == pytest.approx(0.90)

    def test_paper_frequency_steps(self):
        assert voltage_for_frequency(1.5) == pytest.approx(0.85)
        assert voltage_for_frequency(3.0) == pytest.approx(1.00)

    def test_monotone(self):
        vs = [voltage_for_frequency(f) for f in (1.5, 2.0, 2.5, 3.0)]
        assert vs == sorted(vs)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            voltage_for_frequency(0.0)


class TestScaling:
    def test_dynamic_scale_reference_is_one(self):
        assert dynamic_scale(2.0) == pytest.approx(1.0)

    def test_frequency_doubling_power(self):
        # f*V^2 law: 1.5 -> 3.0 GHz raises dynamic power ~2.8x (part of
        # the paper's 2.5x node-power observation).
        ratio = dynamic_scale(3.0) / dynamic_scale(1.5)
        assert 2.4 < ratio < 3.2

    def test_energy_scale_is_v_squared(self):
        assert energy_scale(3.0) == pytest.approx((1.0 / 0.9) ** 2)

    def test_leakage_grows_slower_than_dynamic(self):
        dyn = dynamic_scale(3.0) / dynamic_scale(1.5)
        leak = leakage_scale(3.0) / leakage_scale(1.5)
        assert 1.0 < leak < dyn

    def test_all_positive(self):
        for f in (0.5, 1.0, 2.0, 4.0):
            assert dynamic_scale(f) > 0
            assert leakage_scale(f) > 0
            assert energy_scale(f) > 0
