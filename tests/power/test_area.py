"""Tests for the silicon area model."""

import pytest

from repro.config import baseline_node
from repro.power import AreaModel


@pytest.fixture
def model():
    return AreaModel()


class TestCoreArea:
    def test_grows_with_ooo_class(self, model, node64):
        areas = [model.core_mm2(node64.with_(core=c))
                 for c in ("lowend", "medium", "high", "aggressive")]
        assert areas == sorted(areas)

    def test_grows_with_vector_width(self, model, node64):
        assert (model.core_mm2(node64.with_(vector_bits=2048))
                > 2 * model.core_mm2(node64.with_(vector_bits=128)))

    def test_magnitude_plausible(self, model, node64):
        # A 22nm server core: a few mm^2.
        a = model.core_mm2(node64)
        assert 1.0 < a < 10.0


class TestNodeArea:
    def test_breakdown_sums(self, model, node64):
        na = model.node_area(node64)
        assert na.total_mm2 == pytest.approx(
            na.cores_mm2 + na.l2_mm2 + na.l3_mm2 + na.uncore_mm2)

    def test_sram_proportional_to_capacity(self, model, node64):
        small = model.node_area(node64.with_(cache="32M:256K"))
        big = model.node_area(node64.with_(cache="96M:1M"))
        assert (big.l3_mm2 / small.l3_mm2) == pytest.approx(3.0, rel=0.01)
        assert (big.l2_mm2 / small.l2_mm2) == pytest.approx(4.0, rel=0.01)

    def test_uncore_grows_with_channels(self, model, node64):
        a4 = model.node_area(node64).uncore_mm2
        a8 = model.node_area(node64.with_(memory="8chDDR4")).uncore_mm2
        assert a8 > a4

    def test_die_size_plausible(self, model):
        # 64 medium cores + 64+32 MB SRAM: a big server die, < 900 mm^2.
        na = model.node_area(baseline_node(64))
        assert 150 < na.total_mm2 < 900

    def test_96mb_config_is_cache_dominated(self, model):
        na = AreaModel().node_area(
            baseline_node(64).with_(cache="96M:1M", core="lowend"))
        assert na.cache_fraction > 0.4
