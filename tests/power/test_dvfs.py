"""Tests for power-capped frequency selection."""

import pytest

from repro.apps import get_app
from repro.config import baseline_node
from repro.core import Musa
from repro.power import select_frequency


@pytest.fixture(scope="module")
def btmz_musa():
    return Musa(get_app("btmz"))


class TestSelectFrequency:
    def test_unconstrained_performance_picks_fastest(self, btmz_musa, node64):
        sel = select_frequency(btmz_musa, node64)
        assert sel.selected.frequency_ghz == 3.0

    def test_power_cap_forces_lower_frequency(self, btmz_musa, node64):
        uncapped = select_frequency(btmz_musa, node64)
        p3 = uncapped.point(3.0).power_w
        p15 = uncapped.point(1.5).power_w
        cap = (p3 + p15) / 2
        sel = select_frequency(btmz_musa, node64, power_cap_w=cap)
        assert sel.selected.frequency_ghz < 3.0
        assert sel.selected.power_w <= cap

    def test_infeasible_cap_selects_nothing(self, btmz_musa, node64):
        sel = select_frequency(btmz_musa, node64, power_cap_w=1.0)
        assert sel.selected is None
        assert not any(p.feasible for p in sel.points)

    def test_energy_objective_prefers_lower_frequency(self, btmz_musa,
                                                      node64):
        perf = select_frequency(btmz_musa, node64, objective="performance")
        energy = select_frequency(btmz_musa, node64, objective="energy")
        assert energy.selected.frequency_ghz <= perf.selected.frequency_ghz
        assert energy.selected.energy_j <= perf.selected.energy_j

    def test_edp_between_perf_and_energy(self, btmz_musa, node64):
        perf = select_frequency(btmz_musa, node64, objective="performance")
        energy = select_frequency(btmz_musa, node64, objective="energy")
        edp = select_frequency(btmz_musa, node64, objective="edp")
        assert (energy.selected.frequency_ghz
                <= edp.selected.frequency_ghz
                <= perf.selected.frequency_ghz)

    def test_power_monotone_in_frequency(self, btmz_musa, node64):
        sel = select_frequency(btmz_musa, node64)
        powers = [p.power_w for p in sel.points]
        assert powers == sorted(powers)

    def test_point_lookup(self, btmz_musa, node64):
        sel = select_frequency(btmz_musa, node64)
        assert sel.point(2.0).frequency_ghz == 2.0
        with pytest.raises(KeyError):
            sel.point(4.5)

    def test_validation(self, btmz_musa, node64):
        with pytest.raises(ValueError):
            select_frequency(btmz_musa, node64, objective="speed")
        with pytest.raises(ValueError):
            select_frequency(btmz_musa, node64, power_cap_w=0.0)
        with pytest.raises(ValueError):
            select_frequency(btmz_musa, node64, frequencies=())
