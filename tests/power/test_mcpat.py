"""Tests for the McPAT-substitute processor power model."""

import pytest

from repro.config import baseline_node
from repro.power import McPatModel
from repro.uarch import time_kernel


@pytest.fixture
def model():
    return McPatModel()


class TestLeakage:
    def test_core_leakage_grows_with_ooo_class(self, model, node64):
        leaks = [model.core_l1_leakage_w(node64.with_(core=c))
                 for c in ("lowend", "medium", "high", "aggressive")]
        assert leaks == sorted(leaks)

    def test_core_leakage_grows_with_vector_width(self, model, node64):
        leaks = [model.core_l1_leakage_w(node64.with_(vector_bits=w))
                 for w in (64, 128, 512, 2048)]
        assert leaks == sorted(leaks)

    def test_leakage_scales_with_voltage(self, model, node64):
        assert (model.core_l1_leakage_w(node64.with_(frequency_ghz=3.0))
                > model.core_l1_leakage_w(node64.with_(frequency_ghz=1.5)))

    def test_sram_leakage_proportional_to_capacity(self, model, node64):
        small = model.l2_l3_leakage_w(node64.with_(cache="32M:256K"))
        big = model.l2_l3_leakage_w(node64.with_(cache="96M:1M"))
        # 32M + 64*256K = 48 MB vs 96M + 64*1M = 160 MB.
        assert big / small == pytest.approx(160 / 48, rel=0.01)

    def test_idle_spin_power_positive_and_scales(self, model, node64):
        w2 = model.idle_spin_w(node64)
        w3 = model.idle_spin_w(node64.with_(frequency_ghz=3.0))
        assert 0 < w2 < w3


class TestDynamicEnergy:
    def test_energy_additive_in_events(self, model, node64):
        c1, l1 = model.dynamic_energy_j(node64, 1e9, 3e8, 3e8, 1e7, 1e6)
        c2, l2 = model.dynamic_energy_j(node64, 2e9, 6e8, 6e8, 2e7, 2e6)
        assert c2 == pytest.approx(2 * c1)
        assert l2 == pytest.approx(2 * l1)

    def test_ooo_class_raises_per_instruction_energy(self, model, node64):
        lo, _ = model.dynamic_energy_j(node64.with_(core="lowend"),
                                       1e9, 0, 0, 0, 0)
        hi, _ = model.dynamic_energy_j(node64.with_(core="aggressive"),
                                       1e9, 0, 0, 0, 0)
        assert hi > lo

    def test_wide_fpu_costs_more_per_flop(self, model, node64):
        narrow, _ = model.dynamic_energy_j(node64.with_(vector_bits=128),
                                           1e9, 5e8, 0, 0, 0)
        wide, _ = model.dynamic_energy_j(node64.with_(vector_bits=512),
                                         1e9, 5e8, 0, 0, 0)
        assert wide > narrow

    def test_64bit_fpu_saves_flop_energy(self, model, node64):
        assert model.flop_energy_factor(node64.with_(vector_bits=64)) < 1.0

    def test_rejects_negative_counts(self, model, node64):
        with pytest.raises(ValueError):
            model.dynamic_energy_j(node64, -1, 0, 0, 0, 0)


class TestBusyCorePower:
    def test_magnitude_plausible(self, model, node64, simple_kernel):
        t = time_kernel(simple_kernel, node64)
        p = model.busy_core_power(t, node64)
        # A 22nm server core at 2 GHz: single-digit watts.
        assert 0.3 < p.core_l1_dynamic_w < 10.0
        assert 0.1 < p.core_l1_leakage_w < 2.0

    def test_power_energy_consistency(self, model, node64, simple_kernel):
        t = time_kernel(simple_kernel, node64)
        p = model.busy_core_power(t, node64)
        seconds = t.cycles / (node64.frequency_ghz * 1e9)
        core_j, _ = model.dynamic_energy_j(
            node64, t.instructions, t.scalar_flops, t.l1_accesses,
            t.l2_accesses, t.l3_accesses,
            effective_lanes=t.vectorization.effective_lanes)
        assert p.core_l1_dynamic_w * seconds == pytest.approx(core_j)

    def test_total_property(self, model, node64, simple_kernel):
        t = time_kernel(simple_kernel, node64)
        p = model.busy_core_power(t, node64)
        assert p.core_l1_w == pytest.approx(
            p.core_l1_dynamic_w + p.core_l1_leakage_w)
