"""Tests for the DRAMPower-substitute model."""

import numpy as np
import pytest

from repro.config import memory_preset
from repro.dram import DramSystem, dram_standard
from repro.power import DramPowerModel


@pytest.fixture
def model():
    return DramPowerModel()


class TestFromRates:
    def test_idle_is_background_plus_refresh(self, model):
        r = model.from_rates(memory_preset("4chDDR4"), 0.0, 0.0, 0.5)
        assert r.activate_w == 0.0
        assert r.rdwr_w == 0.0
        assert r.background_w == pytest.approx(8 * model.background_w_per_dimm)
        assert r.total_w == pytest.approx(
            r.background_w * (1 + model.refresh_fraction))

    def test_doubling_channels_doubles_background(self, model):
        r4 = model.from_rates(memory_preset("4chDDR4"), 1e8, 5e7, 0.5)
        r8 = model.from_rates(memory_preset("8chDDR4"), 1e8, 5e7, 0.5)
        assert r8.background_w == pytest.approx(2 * r4.background_w)
        # Dynamic components are traffic-driven and unchanged.
        assert r8.rdwr_w == pytest.approx(r4.rdwr_w)

    def test_row_locality_reduces_activate_power(self, model):
        mem = memory_preset("4chDDR4")
        streaming = model.from_rates(mem, 1e9, 0, row_hit_rate=0.9)
        random = model.from_rates(mem, 1e9, 0, row_hit_rate=0.1)
        assert streaming.activate_w < random.activate_w

    def test_hbm_returns_none(self, model):
        assert model.from_rates(memory_preset("16chHBM"), 1e8, 1e8, 0.5) is None

    def test_magnitude_plausible(self, model):
        # ~32 GB/s of traffic (0.5 G req/s, Fig. 1 LULESH territory):
        # DRAM power should land in the tens of watts.
        r = model.from_rates(memory_preset("8chDDR4"), 4e8, 1e8, 0.5)
        assert 10 < r.total_w < 60

    def test_rejects_bad_rates(self, model):
        with pytest.raises(ValueError):
            model.from_rates(memory_preset("4chDDR4"), -1, 0, 0.5)
        with pytest.raises(ValueError):
            model.from_rates(memory_preset("4chDDR4"), 0, 0, 1.5)


class TestFromCounts:
    def test_event_level_path(self, model):
        timing = dram_standard("DDR4-2400")
        sys = DramSystem(timing, 4)
        res = sys.run(np.arange(8000), write_fraction=0.3)
        elapsed_s = res.elapsed_ns * 1e-9
        p = model.from_counts(memory_preset("4chDDR4"), res.counts, elapsed_s)
        assert p.total_w > p.background_w
        assert p.rdwr_w > 0

    def test_counts_and_rates_agree(self, model):
        """The rate-based sweep path must match the command-trace path
        when fed the same statistics."""
        timing = dram_standard("DDR4-2400")
        res = DramSystem(timing, 4).run(np.arange(8000), write_fraction=0.0)
        elapsed_s = res.elapsed_ns * 1e-9
        from_counts = model.from_counts(memory_preset("4chDDR4"),
                                        res.counts, elapsed_s)
        from_rates = model.from_rates(
            memory_preset("4chDDR4"),
            reads_per_s=res.counts.n_rd / elapsed_s,
            writes_per_s=res.counts.n_wr / elapsed_s,
            row_hit_rate=res.counts.row_hit_rate(),
        )
        assert from_rates.total_w == pytest.approx(from_counts.total_w,
                                                   rel=0.02)

    def test_rejects_zero_elapsed(self, model):
        from repro.dram import CommandCounts
        with pytest.raises(ValueError):
            model.from_counts(memory_preset("4chDDR4"), CommandCounts(), 0.0)
