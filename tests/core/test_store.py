"""Content-addressed result store: keys, persistence, invalidation.

The store is the serve layer's memory: a hit must never touch the
engine, so its contracts — key stability, crash-tolerant load,
first-wins duplicates, counted hits/misses, selective invalidation —
are pinned here at the unit level.
"""

import json
import threading

import pytest

from repro.core.canon import canonical_loads
from repro.core.store import ResultStore, store_key
from repro.obs import MetricsRegistry, get_metrics, set_metrics


CONFIG = {"core": "medium", "cache": "64M:512K", "memory": "4chDDR4",
          "frequency": 2.0, "vector": 128, "cores": 64}


@pytest.fixture
def fresh_metrics():
    reg = MetricsRegistry()
    prev = set_metrics(reg)
    try:
        yield reg
    finally:
        set_metrics(prev)


def _record(i=0):
    rec = dict(CONFIG)
    rec.update({"app": "lulesh", "time_ns": 1.0e9 + i, "energy_j": 40.0})
    return rec


def _entry_args(i=0, code_version="abc1234", app="lulesh"):
    config = dict(CONFIG)
    key = store_key(app, config, "fast", 256, code_version)
    inputs = {"app": app, "config": config, "mode": "fast", "ranks": 256,
              "code_version": code_version}
    prov = {"engine": "batch", "created_s": 0.0, "obs": {}}
    return key, _record(i), inputs, prov


class TestStoreKey:
    def test_key_order_invariant(self):
        shuffled = dict(reversed(list(CONFIG.items())))
        assert store_key("lulesh", CONFIG, "fast", 256, "v1") == \
            store_key("lulesh", shuffled, "fast", 256, "v1")

    def test_every_input_is_keyed(self):
        base = store_key("lulesh", CONFIG, "fast", 256, "v1")
        assert store_key("spmz", CONFIG, "fast", 256, "v1") != base
        assert store_key("lulesh", CONFIG, "replay", 256, "v1") != base
        assert store_key("lulesh", CONFIG, "fast", 128, "v1") != base
        assert store_key("lulesh", CONFIG, "fast", 256, "v2") != base
        other = dict(CONFIG, vector=512)
        assert store_key("lulesh", other, "fast", 256, "v1") != base


class TestPersistence:
    def test_round_trip(self, tmp_path, fresh_metrics):
        path = tmp_path / "store.jsonl"
        key, rec, inputs, prov = _entry_args()
        with ResultStore(path) as store:
            store.put(key, rec, inputs, prov)
        with ResultStore(path) as store:
            assert len(store) == 1
            entry = store.get(key)
        assert entry["record"] == rec
        assert entry["inputs"] == inputs
        assert entry["provenance"]["engine"] == "batch"

    def test_file_is_strict_json(self, tmp_path, fresh_metrics):
        path = tmp_path / "store.jsonl"
        key, rec, inputs, prov = _entry_args()
        rec["time_ns"] = float("inf")
        with ResultStore(path) as store:
            store.put(key, rec, inputs, prov)
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=lambda tok: pytest.fail(
                f"non-JSON token {tok!r} in store file"))

    def test_torn_tail_tolerated_and_counted(self, tmp_path, fresh_metrics):
        path = tmp_path / "store.jsonl"
        key, rec, inputs, prov = _entry_args()
        with ResultStore(path) as store:
            store.put(key, rec, inputs, prov)
        with path.open("a") as fh:
            fh.write('{"key": "torn')  # crashed writer mid-line
        with ResultStore(path) as store:
            assert len(store) == 1
            assert store.get(key) is not None
        assert fresh_metrics.counter("store.corrupt_lines") == 1

    def test_duplicate_keys_first_wins(self, tmp_path, fresh_metrics):
        path = tmp_path / "store.jsonl"
        key, rec, inputs, prov = _entry_args(0)
        with ResultStore(path) as store:
            first = store.put(key, rec, inputs, prov)
            again = store.put(key, _record(1), inputs, prov)
            assert again == first
        # A duplicate line on disk (e.g. two appenders) also keeps the
        # first occurrence.
        line = path.read_text().splitlines()[0]
        altered = canonical_loads(line)
        altered["record"]["time_ns"] = 9.9e9
        from repro.core.canon import canonical_dumps
        with path.open("a") as fh:
            fh.write(canonical_dumps(altered) + "\n")
        with ResultStore(path) as store:
            assert store.get(key)["record"] == rec
        assert fresh_metrics.counter("store.duplicates_dropped") == 1


class TestCounters:
    def test_hit_and_miss_counted(self, tmp_path, fresh_metrics):
        key, rec, inputs, prov = _entry_args()
        with ResultStore(tmp_path / "s.jsonl") as store:
            assert store.get(key) is None
            store.put(key, rec, inputs, prov)
            assert store.get(key) is not None
            assert store.get(key) is not None
        assert fresh_metrics.counter("store.miss") == 1
        assert fresh_metrics.counter("store.hit") == 2
        assert fresh_metrics.counter("store.put") == 1


class TestInvalidation:
    def test_invalidate_by_input_field(self, tmp_path, fresh_metrics):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            for app in ("lulesh", "spmz"):
                key, rec, inputs, prov = _entry_args(app=app)
                store.put(key, rec, inputs, prov)
            assert store.invalidate(app="lulesh") == 1
            assert len(store) == 1
        # Compaction persisted: the removed entry stays gone on reload.
        with ResultStore(path) as store:
            assert len(store) == 1
            assert store.entries()[0]["inputs"]["app"] == "spmz"
        assert fresh_metrics.counter("store.invalidated") == 1

    def test_invalidate_stale_code_versions(self, tmp_path, fresh_metrics):
        with ResultStore(tmp_path / "s.jsonl") as store:
            for ver in ("old1", "old2", "cur"):
                key, rec, inputs, prov = _entry_args(code_version=ver)
                store.put(key, rec, inputs, prov)
            assert store.invalidate_stale("cur") == 2
            assert len(store) == 1
            assert store.entries()[0]["inputs"]["code_version"] == "cur"

    def test_invalidate_nothing_matches(self, tmp_path, fresh_metrics):
        key, rec, inputs, prov = _entry_args()
        with ResultStore(tmp_path / "s.jsonl") as store:
            store.put(key, rec, inputs, prov)
            assert store.invalidate(app="nonesuch") == 0
            assert len(store) == 1
        assert fresh_metrics.counter("store.invalidated") == 0

    def test_invalidate_all(self, tmp_path, fresh_metrics):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            key, rec, inputs, prov = _entry_args()
            store.put(key, rec, inputs, prov)
            assert store.invalidate() == 1
        with ResultStore(path) as store:
            assert len(store) == 0


class TestThreadSafety:
    def test_concurrent_puts_unique_keys(self, tmp_path, fresh_metrics):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path, fsync_every=64)
        errors = []

        def work(tid):
            try:
                for i in range(20):
                    config = dict(CONFIG, frequency=2.0 + tid, vector=128 + i)
                    key = store_key("lulesh", config, "fast", 256, "v1")
                    inputs = {"app": "lulesh", "config": config,
                              "mode": "fast", "ranks": 256,
                              "code_version": "v1"}
                    store.put(key, _record(i), inputs,
                              {"engine": "batch", "created_s": 0.0,
                               "obs": {}})
                    assert store.get(key) is not None
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        store.close()
        with ResultStore(path) as again:
            assert len(again) == 80
