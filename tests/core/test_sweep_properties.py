"""Property tests for the sweep engine and journal.

* ``sweep_configs`` ordering is deterministic (row-major over the
  Table I axes, apps outermost) for arbitrary sub-spaces;
* ``run_sweep`` results are independent of worker count and chunk
  size — one worker and N workers produce identical records;
* the journal round-trips arbitrary record sets, deduplicates on
  first occurrence, and tolerates torn tails.
"""

import json
import tempfile
from itertools import product
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LABELS, CORE_LABELS, DesignSpace, MEMORY_LABELS
from repro.config.node import CORE_COUNTS, FREQUENCIES_GHZ, VECTOR_WIDTHS_BITS
from repro.core import CONFIG_KEYS, Journal, replay_journal, run_sweep, sweep_configs

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _axis_subset(values):
    return st.lists(st.sampled_from(values), min_size=1,
                    max_size=len(values), unique=True).map(tuple)


spaces = st.builds(
    DesignSpace,
    core_labels=_axis_subset(CORE_LABELS),
    cache_labels=_axis_subset(CACHE_LABELS),
    memory_labels=_axis_subset(MEMORY_LABELS),
    frequencies=_axis_subset(FREQUENCIES_GHZ),
    vector_widths=_axis_subset(VECTOR_WIDTHS_BITS),
    core_counts=_axis_subset(CORE_COUNTS),
)

app_lists = st.lists(st.sampled_from(["hydro", "spmz", "btmz", "spec3d",
                                      "lulesh"]),
                     min_size=1, max_size=3, unique=True)


class TestOrderingProperties:
    @_SETTINGS
    @given(space=spaces, apps=app_lists)
    def test_sweep_configs_deterministic_row_major(self, space, apps):
        tasks = sweep_configs(apps, space)
        again = sweep_configs(apps, space)
        assert [(a, n.label) for a, n in tasks] \
            == [(a, n.label) for a, n in again]
        # Row-major cartesian order, apps outermost.
        expected = [
            (app, core, cache, mem, freq, vec, ncores)
            for app in apps
            for core, cache, mem, freq, vec, ncores in product(
                space.core_labels, space.cache_labels, space.memory_labels,
                space.frequencies, space.vector_widths, space.core_counts)
        ]
        got = []
        for app, node in tasks:
            ax = node.axis_values()
            got.append((app, ax["core"], ax["cache"], ax["memory"],
                        ax["frequency"], ax["vector"], ax["cores"]))
        assert got == expected
        assert len(set(got)) == len(got)  # no duplicate design points


# Journal records: full config identity plus one payload field.
_records = st.lists(
    st.fixed_dictionaries({
        "app": st.sampled_from(["a", "b", "c"]),
        "core": st.sampled_from(CORE_LABELS),
        "cache": st.sampled_from(CACHE_LABELS),
        "memory": st.sampled_from(MEMORY_LABELS),
        "frequency": st.sampled_from(FREQUENCIES_GHZ),
        "vector": st.sampled_from(VECTOR_WIDTHS_BITS),
        "cores": st.sampled_from(CORE_COUNTS),
        "time_ns": st.floats(min_value=1.0, max_value=1e12,
                             allow_nan=False),
    }),
    min_size=0, max_size=12,
    unique_by=lambda r: tuple(r[k] for k in CONFIG_KEYS),
)


class TestJournalProperties:
    @_SETTINGS
    @given(records=_records)
    def test_roundtrip(self, records):
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "j.jsonl"
            with Journal(path) as j:
                for r in records:
                    j.append(r)
            replayed = replay_journal(path)
            assert list(replayed.results) == records
            assert replayed.duplicates == 0
            assert replayed.corrupt_lines == 0

    @_SETTINGS
    @given(records=_records.filter(lambda rs: len(rs) >= 1))
    def test_duplicates_keep_first_occurrence(self, records):
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "j.jsonl"
            with Journal(path) as j:
                for r in records:
                    j.append(r)
                # Re-append every record with a different payload.
                for r in records:
                    j.append({**r, "time_ns": r["time_ns"] + 1.0})
            replayed = replay_journal(path)
            assert list(replayed.results) == records  # originals win
            assert replayed.duplicates == len(records)

    @_SETTINGS
    @given(records=_records.filter(lambda rs: len(rs) >= 2))
    def test_torn_tail_drops_only_last_record(self, records):
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "j.jsonl"
            with Journal(path) as j:
                for r in records:
                    j.append(r)
            content = path.read_text()
            path.write_text(content[:-10])  # torn final write
            replayed = replay_journal(path)
            assert list(replayed.results) == records[:-1]
            assert replayed.corrupt_lines == 1


class TestScheduleInvariance:
    def test_records_independent_of_processes_and_chunking(self):
        space = DesignSpace(core_labels=("medium",),
                            cache_labels=("64M:512K",),
                            memory_labels=("4chDDR4", "8chDDR4"),
                            frequencies=(2.0,), vector_widths=(128, 512),
                            core_counts=(64,))
        reference = json.dumps(
            list(run_sweep(["spmz"], space, processes=1)), sort_keys=True)
        for procs, chunk in ((2, 1), (3, 2), (2, 5)):
            rs = run_sweep(["spmz"], space, processes=procs,
                           chunk_size=chunk)
            assert json.dumps(list(rs), sort_keys=True) == reference, \
                f"schedule-dependent results with processes={procs}, " \
                f"chunk_size={chunk}"
