"""``mode='replay'`` threaded through the sweep engine.

Replay-mode campaigns must journal and resume exactly like fast-mode
ones, produce identical results with and without the batched evaluator
and across worker counts, and surface the replay activity counters in
the campaign metrics.
"""

import json

import pytest

from repro.config import DesignSpace
from repro.core import FailNTimes, SweepAbort, run_sweep
from repro.obs import MetricsRegistry, summarize

APPS = ["spmz"]
SPACE = DesignSpace(core_labels=("medium", "high"),
                    cache_labels=("64M:512K",),
                    memory_labels=("4chDDR4",),
                    frequencies=(2.0,), vector_widths=(128,),
                    core_counts=(64,))  # 2 configurations
N_RANKS = 8


def canon(rs):
    return json.dumps(list(rs), sort_keys=True)


@pytest.fixture(scope="module")
def replay_reference():
    return canon(run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                           mode="replay"))


class TestMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                      mode="detailed")

    def test_replay_differs_from_fast(self, replay_reference):
        fast = run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                         mode="fast")
        assert canon(fast) != replay_reference

    def test_batched_equals_scalar(self, replay_reference):
        scalar = run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                           mode="replay", batch=False)
        assert canon(scalar) == replay_reference

    def test_pooled_equals_inline(self, replay_reference):
        pooled = run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=2,
                           mode="replay")
        assert canon(pooled) == replay_reference


class TestMetrics:
    def test_replay_counters_in_summary(self):
        reg = MetricsRegistry()
        run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                  mode="replay", metrics=reg)
        d = summarize(reg.snapshot())["derived"]
        assert d["replay_events"] > 0
        assert d["replay_messages"] > 0

    def test_pooled_counters_reach_parent(self):
        reg = MetricsRegistry()
        run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=2,
                  mode="replay", metrics=reg)
        assert reg.counter("replay.events") > 0

    def test_fast_mode_has_no_replay_counters(self):
        reg = MetricsRegistry()
        run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                  mode="fast", metrics=reg)
        assert reg.counter("replay.events") == 0


class TestJournalResume:
    def test_abort_then_resume_is_identical(self, tmp_path,
                                            replay_reference):
        journal = tmp_path / "replay.jsonl"
        victim = list(SPACE)[1].label
        with pytest.raises(SweepAbort):
            run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                      mode="replay", resume=journal,
                      fault_hook=FailNTimes(times=1, fatal=True,
                                            label=victim, app=APPS[0]))
        n_journaled = sum(1 for _ in journal.open())
        assert 0 < n_journaled < len(SPACE)

        reg = MetricsRegistry()
        resumed = run_sweep(APPS, SPACE, n_ranks=N_RANKS, processes=1,
                            mode="replay", resume=journal, metrics=reg)
        assert reg.counter("sweep.tasks.skipped") == n_journaled
        assert canon(resumed) == replay_reference
