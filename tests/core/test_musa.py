"""Tests for the Musa facade."""

import pytest

from repro.apps import get_app
from repro.core import Musa
from repro.core.musa import _LruDict
from repro.obs import get_metrics


@pytest.fixture(scope="module")
def musa():
    return Musa(get_app("spmz"))


class TestBurstMode:
    def test_region_speedup_monotone(self, musa):
        s1 = musa.compute_region_speedup(1)
        s32 = musa.compute_region_speedup(32)
        s64 = musa.compute_region_speedup(64)
        assert s1 == pytest.approx(1.0)
        assert 1.0 < s32 <= 64
        assert s32 <= s64 * 1.01

    def test_burst_phase_memoized(self, musa):
        p = musa.phases[0]
        assert musa.burst_phase(p, 32) is musa.burst_phase(p, 32)

    def test_burst_full_replay(self, musa):
        res = musa.simulate_burst_full(n_cores=32, n_ranks=8, n_iterations=1)
        assert res.n_ranks == 8
        assert res.total_ns > 0
        assert res.mpi_fraction > 0

    def test_trace_cached(self, musa):
        a = musa._burst_trace(8, 1)
        b = musa._burst_trace(8, 1)
        assert a is b


class TestDetailedMode:
    def test_simulate_node_record_fields(self, musa, node64):
        rec = musa.simulate_node(node64).record()
        for key in ("app", "core", "cache", "memory", "frequency", "vector",
                    "cores", "time_ns", "power_total_w", "energy_j",
                    "mpki_l1", "occupancy"):
            assert key in rec

    def test_phase_detail_memoized(self, musa, node64):
        p = musa.phases[0]
        assert musa.phase_detail(p, node64) is musa.phase_detail(p, node64)

    def test_different_nodes_not_conflated(self, musa, node64):
        p = musa.phases[0]
        a = musa.phase_detail(p, node64)
        b = musa.phase_detail(p, node64.with_(vector_bits=512))
        assert a.makespan_ns != b.makespan_ns

    def test_energy_consistent_with_power_and_time(self, musa, node64):
        r = musa.simulate_node(node64)
        assert r.energy_j == pytest.approx(
            r.power.total_w * r.time_ns * 1e-9)

    def test_hbm_energy_is_none(self):
        from repro.config import baseline_node

        m = Musa(get_app("lulesh"))
        r = m.simulate_node(baseline_node(64).with_(memory="16chHBM",
                                                    vector_bits=64))
        assert r.energy_j is None
        assert r.power.memory_w is None
        assert r.power.core_l1_w > 0

    def test_comm_excluded_by_default(self, musa, node64):
        without = musa.simulate_node(node64)
        with_comm = musa.simulate_node(node64, include_comm=True)
        assert with_comm.time_ns > without.time_ns

    def test_fast_vs_replay_agree(self, node64):
        """The analytic integration must track the full replay."""
        m = Musa(get_app("btmz"))
        fast = m.simulate_node(node64, n_ranks=16, n_iterations=2,
                               mode="fast", include_comm=True)
        full = m.simulate_node(node64, n_ranks=16, n_iterations=2,
                               mode="replay")
        assert fast.time_ns == pytest.approx(full.time_ns, rel=0.30)

    def test_invalid_mode(self, musa, node64):
        with pytest.raises(ValueError):
            musa.simulate_node(node64, mode="magic")


class TestMemoLru:
    def test_evicts_least_recently_used(self):
        d = _LruDict(2)
        d["a"] = 1
        d["b"] = 2
        assert d["a"] == 1  # refresh 'a' — 'b' is now the LRU entry
        d["c"] = 3
        assert "b" not in d
        assert "a" in d and "c" in d
        assert len(d) == 2

    def test_eviction_counted(self):
        reg = get_metrics()
        before = reg.counter("musa.memo.evictions")
        d = _LruDict(1)
        d["a"] = 1
        d["b"] = 2
        d["c"] = 3
        assert reg.counter("musa.memo.evictions") - before == 2

    def test_overwrite_does_not_evict(self):
        reg = get_metrics()
        before = reg.counter("musa.memo.evictions")
        d = _LruDict(2)
        d["a"] = 1
        d["a"] = 2
        d["b"] = 3
        assert d["a"] == 2
        assert reg.counter("musa.memo.evictions") == before

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            _LruDict(0)

    def test_capped_musa_results_unchanged(self, node64):
        """Evicted entries are re-simulated, not lost: a tightly capped
        Musa returns the same PhaseDetail values as an uncapped one."""
        reg = get_metrics()
        before = reg.counter("musa.memo.evictions")
        ref = Musa(get_app("spmz"))
        tight = Musa(get_app("spmz"), memo_cap=1)
        nodes = [node64, node64.with_(vector_bits=512),
                 node64.with_(frequency_ghz=3.0)]
        for _ in range(2):  # second pass replays evicted keys
            for node in nodes:
                for p in ref.phases:
                    assert (tight.phase_detail(p, node).makespan_ns
                            == ref.phase_detail(p, node).makespan_ns)
        assert reg.counter("musa.memo.evictions") > before
        for cache in (tight._burst_cache, tight._detail_cache,
                      tight._trace_cache, tight._timing_cache):
            assert len(cache) <= 1


class TestCommModel:
    def test_single_rank_no_comm(self, musa):
        assert musa.comm_iteration_ns(1) == 0.0

    def test_comm_grows_with_halo(self):
        a = Musa(get_app("hydro")).comm_iteration_ns(256)
        b = Musa(get_app("btmz")).comm_iteration_ns(256)
        assert b > a  # btmz has much bigger halos

    def test_comm_independent_of_node_config(self, musa):
        # Configuration-invariance: the paper's network is fixed.
        assert musa.comm_iteration_ns(256) == musa.comm_iteration_ns(256)
