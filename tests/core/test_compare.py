"""Tests for node A/B comparison."""

import pytest

from repro.apps import get_app
from repro.config import baseline_node
from repro.core import compare_nodes


@pytest.fixture(scope="module")
def channels_comparison():
    a = baseline_node(64)
    b = a.with_(memory="8chDDR4")
    return compare_nodes(a, b, apps=[get_app("hydro"), get_app("lulesh")])


class TestCompareNodes:
    def test_per_app_deltas(self, channels_comparison):
        d = channels_comparison["lulesh"]
        assert d.speedup > 1.2          # LULESH profits from channels
        assert channels_comparison["hydro"].speedup == pytest.approx(
            1.0, abs=0.03)

    def test_power_ratio_grows_with_dimms(self, channels_comparison):
        for d in channels_comparison.deltas:
            assert d.power_ratio > 1.0  # more DIMMs, more background power

    def test_winners(self, channels_comparison):
        assert channels_comparison.winners() == ("lulesh",)

    def test_geomean(self, channels_comparison):
        speeds = [d.speedup for d in channels_comparison.deltas]
        assert min(speeds) <= channels_comparison.mean_speedup <= max(speeds)

    def test_energy_none_propagates(self):
        a = baseline_node(64).with_(vector_bits=64)
        b = a.with_(memory="16chHBM")
        cmp = compare_nodes(a, b, apps=[get_app("lulesh")])
        assert cmp["lulesh"].energy_ratio is None

    def test_perf_per_watt(self, channels_comparison):
        d = channels_comparison["lulesh"]
        assert d.perf_per_watt_ratio == pytest.approx(
            d.speedup / d.power_ratio)

    def test_render(self, channels_comparison):
        text = channels_comparison.render()
        assert "GEOMEAN" in text
        assert "lulesh" in text

    def test_same_node_rejected(self):
        a = baseline_node(64)
        with pytest.raises(ValueError, match="itself"):
            compare_nodes(a, a)

    def test_unknown_app_lookup(self, channels_comparison):
        with pytest.raises(KeyError):
            channels_comparison["miniFE"]
