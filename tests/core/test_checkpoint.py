"""Tests for checkpointed (resumable) sweeps."""

import json
import logging
import subprocess
import sys

import pytest

from repro.config import DesignSpace
from repro.core import load_checkpoint, replay_journal, run_sweep_checkpointed
from repro.obs import get_metrics


@pytest.fixture
def tiny_space():
    return DesignSpace(core_labels=("medium",), cache_labels=("64M:512K",),
                       memory_labels=("4chDDR4",), frequencies=(2.0,),
                       vector_widths=(128, 256), core_counts=(64,))


class TestCheckpointedSweep:
    def test_fresh_run_completes(self, tiny_space, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        rs = run_sweep_checkpointed(["spmz"], tiny_space,
                                    checkpoint_path=path)
        assert len(rs) == 2
        assert path.exists()
        # The columnar data plane journals one block line per shard;
        # replaying it recovers every record.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        replayed = replay_journal(path)
        assert len(replayed.results) == 2

    def test_resume_skips_done_work(self, tiny_space, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        first = run_sweep_checkpointed(["spmz"], tiny_space,
                                       checkpoint_path=path)
        size_before = path.stat().st_size
        again = run_sweep_checkpointed(["spmz"], tiny_space,
                                       checkpoint_path=path)
        # Nothing re-simulated: file unchanged, results identical.
        assert path.stat().st_size == size_before
        assert len(again) == len(first)

    def test_partial_checkpoint_resumes_rest(self, tiny_space, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        full = run_sweep_checkpointed(["spmz"], tiny_space,
                                      checkpoint_path=path)
        # Truncate to one record (simulated crash after the first sim).
        lines = path.read_text().strip().splitlines()
        path.write_text(lines[0] + "\n")
        resumed = run_sweep_checkpointed(["spmz"], tiny_space,
                                         checkpoint_path=path)
        assert len(resumed) == len(full)

    def test_truncated_tail_tolerated(self, tiny_space, tmp_path):
        from repro.core import run_sweep

        path = tmp_path / "ckpt.jsonl"
        # Scalar evaluation journals one line per record.
        run_sweep(["spmz"], tiny_space, processes=1, resume=path,
                  batch=False)
        # Corrupt the last line mid-JSON (torn write).
        content = path.read_text()
        path.write_text(content[:-20])
        rs = load_checkpoint(path)
        assert len(rs) == 1  # the intact record survives
        resumed = run_sweep_checkpointed(["spmz"], tiny_space,
                                         checkpoint_path=path)
        assert len(resumed) == 2

    def test_truncated_block_tail_tolerated(self, tiny_space, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        run_sweep_checkpointed(["spmz"], tiny_space, checkpoint_path=path)
        # A torn block line drops the whole block; the resumed run
        # redoes its records rather than trusting a partial shard.
        content = path.read_text()
        path.write_text(content[:-20])
        assert len(load_checkpoint(path)) == 0
        resumed = run_sweep_checkpointed(["spmz"], tiny_space,
                                         checkpoint_path=path)
        assert len(resumed) == 2

    def test_missing_checkpoint_is_empty(self, tmp_path):
        assert len(load_checkpoint(tmp_path / "nope.jsonl")) == 0

    def test_results_match_plain_sweep(self, tiny_space, tmp_path):
        from repro.core import run_sweep

        ckpt = run_sweep_checkpointed(["btmz"], tiny_space,
                                      checkpoint_path=tmp_path / "c.jsonl")
        plain = run_sweep(["btmz"], tiny_space, processes=1)
        for rec in plain:
            cfg = {k: rec[k] for k in ("app", "core", "cache", "memory",
                                       "frequency", "vector", "cores")}
            assert ckpt.lookup(**cfg)["time_ns"] == pytest.approx(
                rec["time_ns"], rel=1e-9)

    def test_rejects_bad_flush(self, tiny_space, tmp_path):
        with pytest.raises(ValueError):
            run_sweep_checkpointed(["spmz"], tiny_space,
                                   checkpoint_path=tmp_path / "x.jsonl",
                                   flush_every=0)


def _record(vector=128, time_ns=1.0):
    return {"app": "spmz", "core": "medium", "cache": "64M:512K",
            "memory": "4chDDR4", "frequency": 2.0, "vector": vector,
            "cores": 64, "time_ns": time_ns}


class TestDuplicateHandling:
    def test_duplicates_keep_first_and_warn(self, tmp_path, caplog):
        path = tmp_path / "dup.jsonl"
        lines = [_record(128, 1.0), _record(128, 999.0), _record(256, 2.0)]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        before = get_metrics().counter("checkpoint.duplicates_dropped")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            rs = load_checkpoint(path)
        assert len(rs) == 2
        # First occurrence wins.
        assert rs.lookup(**{k: _record(128)[k]
                            for k in ("app", "core", "cache", "memory",
                                      "frequency", "vector",
                                      "cores")})["time_ns"] == 1.0
        # The silent drop is now observable: counter + warning.
        assert get_metrics().counter(
            "checkpoint.duplicates_dropped") == before + 1
        assert any("duplicate" in rec.message for rec in caplog.records)

    def test_replay_counts_duplicates(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        rec = _record()
        path.write_text(json.dumps(rec) + "\n" + json.dumps(rec) + "\n"
                        + json.dumps(rec) + "\n")
        replayed = replay_journal(path)
        assert len(replayed.results) == 1
        assert replayed.duplicates == 2

    def test_failed_stub_excluded_from_checkpoint(self, tmp_path):
        path = tmp_path / "stub.jsonl"
        stub = {**_record(), "failed": True, "error": "boom", "attempts": 3}
        del stub["time_ns"]
        path.write_text(json.dumps(stub) + "\n"
                        + json.dumps(_record(256)) + "\n")
        rs = load_checkpoint(path)
        assert len(rs) == 1  # the stub is retryable, not done
        replayed = replay_journal(path)
        assert len(replayed.failed) == 1


def _stub(vector=128, attempts=1, error="boom"):
    s = {**_record(vector), "failed": True, "error": error,
         "attempts": attempts}
    del s["time_ns"]
    return s


class TestStubDedupe:
    """Regression: a task failing across N resumed runs appends N stubs;
    replay must collapse them to one entry reflecting the latest run."""

    def test_repeated_stubs_collapse_to_latest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [_stub(128, attempts=1, error="first"),
                 _record(256),
                 _stub(128, attempts=2, error="second")]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        replayed = replay_journal(path)
        assert len(replayed.failed) == 1
        assert replayed.failed[0]["attempts"] == 2
        assert replayed.failed[0]["error"] == "second"
        assert replayed.duplicates == 0  # stubs are not duplicates

    def test_stub_then_success_drops_stub(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [_stub(128, attempts=1), _record(128)]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        replayed = replay_journal(path)
        assert replayed.failed == []
        assert len(replayed.results) == 1

    def test_distinct_tasks_keep_distinct_stubs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [_stub(128, attempts=1), _stub(256, attempts=3)]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        replayed = replay_journal(path)
        assert len(replayed.failed) == 2
        assert sorted(s["attempts"] for s in replayed.failed) == [1, 3]


class TestStreamingMergeMemory:
    """``merge_journal`` is a two-pass stream: pass 1 records byte
    offsets, pass 2 fetches one line at a time — peak RSS must stay far
    below the journal size, or range-space shard merges stop scaling."""

    N_PER_SHARD = 1200
    PAD = 8192

    def _write_shard(self, path, lo, hi):
        pad = "x" * self.PAD
        with open(path, "w") as fh:
            for i in range(lo, hi):
                fh.write(json.dumps(
                    {"app": "spmz", "core": "medium", "cache": "64M:512K",
                     "memory": "4chDDR4", "frequency": 2.0, "vector": i,
                     "cores": 64, "time_ns": float(i),
                     "pad": pad + str(i)}) + "\n")

    def test_merge_peak_rss_bounded(self, tmp_path):
        shards = [tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"]
        self._write_shard(shards[0], 0, self.N_PER_SHARD)
        self._write_shard(shards[1], self.N_PER_SHARD,
                          2 * self.N_PER_SHARD)
        total = sum(p.stat().st_size for p in shards)
        merged = tmp_path / "merged.jsonl"
        prog = (
            "import json, resource, sys\n"
            "from repro.core import merge_journal\n"
            "merge_journal([sys.argv[1], sys.argv[2]], sys.argv[3],\n"
            "              collect=False)\n"
            "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)\n"
        )
        base = subprocess.run(
            [sys.executable, "-c",
             "import resource\n"
             "from repro.core import merge_journal\n"
             "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)"],
            capture_output=True, text=True, check=True)
        run = subprocess.run(
            [sys.executable, "-c", prog, str(shards[0]), str(shards[1]),
             str(merged)], capture_output=True, text=True, check=True)
        delta_bytes = (int(run.stdout) - int(base.stdout)) * 1024
        # A materializing merge holds every parsed record (> journal
        # size); the streaming one needs only refs + one line in flight.
        assert delta_bytes < 0.4 * total, (
            f"merge peak RSS grew {delta_bytes / 1e6:.1f} MB on a "
            f"{total / 1e6:.1f} MB journal — not streaming")
        out_lines = merged.read_text().splitlines()
        assert len(out_lines) == 2 * self.N_PER_SHARD
        vectors = [json.loads(l)["vector"] for l in out_lines]
        assert vectors == sorted(vectors)
