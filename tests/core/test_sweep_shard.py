"""Sharded campaigns: K/N partitioning, journal merge, work stealing
and the spawn-context fallback.

The multi-host contract: N invocations with ``shard="K/N"`` and
separate journals, merged with :func:`merge_journal`, must resume into
the single-process ResultSet **byte-for-byte with zero re-evaluation**
— regardless of shard count or merge input order.
"""

import json
import tempfile
import time
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import smoke_design_space
from repro.core import merge_journal, run_sweep
from repro.core import sweep as sweep_mod
from repro.core.checkpoint import replay_journal
from repro.obs import MetricsRegistry

APPS = ["spmz"]
SPACE = smoke_design_space()  # 8 configurations


@pytest.fixture(scope="module")
def reference():
    """Canonical single-process result, JSON-serialized for bytewise
    comparison (also warms the in-process Musa/evaluator caches, so
    the sharded runs below are cheap)."""
    rs = run_sweep(APPS, SPACE, processes=1)
    return json.dumps(list(rs), sort_keys=True)


class TestShardParsing:
    @pytest.mark.parametrize("bad", ["2/2", "3/2", "-1/2", "0/0", "abc",
                                     "1//2", (2, 2), (-1, 3)])
    def test_invalid_shards_rejected(self, bad, reference):
        with pytest.raises(ValueError):
            run_sweep(APPS, SPACE, processes=1, shard=bad)

    def test_string_and_tuple_equivalent(self, reference):
        s = run_sweep(APPS, SPACE, processes=1, shard="1/3")
        t = run_sweep(APPS, SPACE, processes=1, shard=(1, 3))
        assert list(s) == list(t)


class TestShardPartition:
    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_shards_are_a_disjoint_cover(self, n_shards, reference):
        parts = [run_sweep(APPS, SPACE, processes=1, shard=(k, n_shards))
                 for k in range(n_shards)]
        assert sum(len(p) for p in parts) == len(APPS) * len(SPACE)
        union = sorted(
            (json.dumps(r, sort_keys=True) for p in parts for r in p))
        assert union == sorted(json.dumps(r, sort_keys=True)
                               for r in json.loads(reference))

    def test_shard_meta_line_journaled(self, reference, tmp_path):
        journal = tmp_path / "s1.jsonl"
        run_sweep(APPS, SPACE, processes=1, shard="1/2", resume=journal)
        replay = replay_journal(journal)
        assert {"shard": 1, "of": 2, "tasks": 4} in replay.meta


class TestMergeInvariance:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n_shards=st.integers(1, 4), order_seed=st.randoms())
    def test_merged_shards_resume_bit_identical(self, reference, n_shards,
                                                order_seed):
        with tempfile.TemporaryDirectory() as tmp:
            journals = []
            for k in range(n_shards):
                path = Path(tmp) / f"s{k}.jsonl"
                run_sweep(APPS, SPACE, processes=1, shard=(k, n_shards),
                          resume=path)
                journals.append(path)
            merged = Path(tmp) / "merged.jsonl"
            shuffled = list(journals)
            order_seed.shuffle(shuffled)
            merge_journal(shuffled, merged)
            canonical = merge_journal(journals, Path(tmp) / "m2.jsonl")
            assert merged.read_bytes() \
                == (Path(tmp) / "m2.jsonl").read_bytes(), \
                "merged journal depends on shard input order"
            assert len(canonical.results) == len(APPS) * len(SPACE)

            reg = MetricsRegistry()
            resumed = run_sweep(APPS, SPACE, processes=1, resume=merged,
                                metrics=reg)
            assert reg.counter("sweep.tasks.completed") == 0, \
                "resume from merged shards re-evaluated tasks"
            assert reg.counter("sweep.tasks.skipped") \
                == len(APPS) * len(SPACE)
            assert json.dumps(list(resumed), sort_keys=True) == reference

    def test_partial_shard_set_resumes_the_remainder(self, reference,
                                                     tmp_path):
        # Only shard 0/2 ran before the merge: resuming evaluates just
        # the missing half and still lands on the canonical ResultSet.
        s0 = tmp_path / "s0.jsonl"
        run_sweep(APPS, SPACE, processes=1, shard="0/2", resume=s0)
        merged = tmp_path / "merged.jsonl"
        merge_journal([s0], merged)
        reg = MetricsRegistry()
        resumed = run_sweep(APPS, SPACE, processes=1, resume=merged,
                            metrics=reg)
        assert reg.counter("sweep.tasks.skipped") == 4
        assert reg.counter("sweep.tasks.completed") == 4
        assert json.dumps(list(resumed), sort_keys=True) == reference


@dataclass(frozen=True)
class SleepOn:
    """Fault hook that stalls (without failing) one task, so the
    worker that drew it falls behind and its deque gets robbed."""

    label: str
    seconds: float = 0.3

    def __call__(self, app_name, node, attempt):
        if node.label == self.label:
            time.sleep(self.seconds)


class TestWorkStealing:
    def test_stall_triggers_steal_and_results_unchanged(self, reference):
        victim = list(SPACE)[0].label
        reg = MetricsRegistry()
        rs = run_sweep(APPS, SPACE, processes=2, chunk_size=1,
                       fault_hook=SleepOn(victim), metrics=reg)
        assert reg.counter("sweep.shards") == len(APPS) * len(SPACE)
        assert reg.counter("sweep.steals") >= 1, \
            "idle worker never stole from the stalled one"
        assert json.dumps(list(rs), sort_keys=True) == reference

    def test_pooled_counts_shards(self, reference):
        reg = MetricsRegistry()
        run_sweep(APPS, SPACE, processes=2, chunk_size=4, metrics=reg)
        assert reg.counter("sweep.shards") == 2


class TestSpawnFallback:
    def test_fork_unavailable_degrades_to_spawn(self, reference,
                                                monkeypatch):
        def no_fork(method=None):
            if method == "fork":
                raise ValueError("fork not available on this platform")
            return get_context(method)

        monkeypatch.setattr(sweep_mod, "get_context", no_fork)
        reg = MetricsRegistry()
        rs = run_sweep(APPS, SPACE, processes=2, metrics=reg)
        assert reg.counter("sweep.ctx.spawn") == 1
        assert json.dumps(list(rs), sort_keys=True) == reference
