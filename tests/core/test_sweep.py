"""Tests for the design-space sweep driver (reduced spaces for speed)."""

import pytest

from repro.config import DesignSpace
from repro.core import normalize_axis, run_sweep, sweep_configs


@pytest.fixture(scope="module")
def tiny_space():
    """A 2x2 slice of the full space (vector x memory)."""
    return DesignSpace(
        core_labels=("medium",),
        cache_labels=("64M:512K",),
        memory_labels=("4chDDR4", "8chDDR4"),
        frequencies=(2.0,),
        vector_widths=(128, 512),
        core_counts=(64,),
    )


class TestSweep:
    def test_inline_sweep_completeness(self, tiny_space):
        rs = run_sweep(["spmz"], tiny_space, processes=1)
        assert len(rs) == 4
        assert set(rs.unique("vector")) == {128, 512}
        assert set(rs.unique("memory")) == {"4chDDR4", "8chDDR4"}

    def test_multiple_apps(self, tiny_space):
        rs = run_sweep(["hydro", "lulesh"], tiny_space, processes=1)
        assert len(rs) == 8
        assert set(rs.unique("app")) == {"hydro", "lulesh"}

    def test_results_normalizable(self, tiny_space):
        rs = run_sweep(["spmz"], tiny_space, processes=1)
        bars = normalize_axis(rs, "vector", 128, "time_ns")
        b512 = [b for b in bars if b.value == 512][0]
        assert b512.mean > 1.2  # spmz vectorizes well

    def test_parallel_matches_inline(self, tiny_space):
        inline = run_sweep(["btmz"], tiny_space, processes=1)
        parallel = run_sweep(["btmz"], tiny_space, processes=2)
        for rec in inline:
            cfg = {k: rec[k] for k in
                   ("app", "core", "cache", "memory", "frequency", "vector",
                    "cores")}
            other = parallel.lookup(**cfg)
            assert other["time_ns"] == pytest.approx(rec["time_ns"],
                                                     rel=1e-9)

    def test_sweep_configs_ordering(self, tiny_space):
        tasks = sweep_configs(["a", "b"], tiny_space)
        assert len(tasks) == 8
        assert tasks[0][0] == "a" and tasks[-1][0] == "b"
