"""Property tests for the columnar result frame (DESIGN §10).

The frame's whole contract is *byte* equivalence with the dict path:
for any uniform-schema records, ``canonical_lines``/``record_digests``
must match ``canonical_dumps``/``content_digest`` of the equivalent
dicts exactly — including NaN/inf sentinels, None cells, booleans
(failure stubs) and nested values — and the journal/store block form
plus both IPC transports must round-trip without perturbing a byte.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canon import canonical_dumps, canonical_loads, content_digest
from repro.core.frame import (
    BLOCK_KEY,
    FrameRow,
    ResultFrame,
    pack_frame,
    scalar_fragment,
    unpack_frame,
)

_KEYS = st.text(
    st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=1, max_size=8,
).filter(lambda k: not k.startswith("__"))

_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2 ** 70, max_value=2 ** 70),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=12),
    st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=3),
)


@st.composite
def record_batches(draw):
    """A list of records sharing one schema, arbitrary column shapes."""
    keys = draw(st.lists(_KEYS, min_size=1, max_size=6, unique=True))
    n = draw(st.integers(min_value=1, max_value=8))
    cols = {k: draw(st.lists(_SCALARS, min_size=n, max_size=n))
            for k in keys}
    return [{k: cols[k][i] for k in keys} for i in range(n)]


class TestFrameEqualsDictPath:
    @settings(max_examples=120, deadline=None)
    @given(records=record_batches())
    def test_canonical_lines_and_digests_bit_identical(self, records):
        frame = ResultFrame.from_records(records)
        assert frame.canonical_lines() == \
            [canonical_dumps(r) for r in records]
        assert frame.record_digests() == \
            [content_digest(r) for r in records]
        # FrameRow is a Mapping: canon encodes it like the dict itself.
        assert [canonical_dumps(row) for row in frame.rows()] == \
            frame.canonical_lines()

    @settings(max_examples=80, deadline=None)
    @given(records=record_batches())
    def test_block_form_round_trips(self, records):
        frame = ResultFrame.from_records(records)
        line = frame.to_block_line()
        payload = canonical_loads(line)[BLOCK_KEY]
        back = ResultFrame.from_block_payload(payload)
        # The decoded frame re-renders the exact same bytes, so resume
        # from a block journal can never drift from the dict path.
        assert back.canonical_lines() == frame.canonical_lines()
        assert back.keys == frame.keys

    @settings(max_examples=40, deadline=None)
    @given(records=record_batches())
    def test_ipc_transports_round_trip(self, records):
        frame = ResultFrame.from_records(records)
        for transport, payload in (pack_frame(frame),):
            back = unpack_frame(transport, payload)
            assert back.canonical_lines() == frame.canonical_lines()

    @settings(max_examples=60, deadline=None)
    @given(records=record_batches(),
           data=st.data())
    def test_select_preserves_bytes(self, records, data):
        frame = ResultFrame.from_records(records)
        idx = data.draw(st.lists(
            st.integers(0, len(records) - 1), max_size=len(records)))
        sub = frame.select(idx)
        assert sub.canonical_lines() == \
            [frame.canonical_lines()[i] for i in idx]

    @settings(max_examples=60, deadline=None)
    @given(records=record_batches())
    def test_row_materialization_matches_records(self, records):
        frame = ResultFrame.from_records(records)
        got = frame.to_records()
        # NaN breaks dict ==; compare through canonical bytes instead.
        assert [canonical_dumps(r) for r in got] == \
            [canonical_dumps(r) for r in records]


class TestFailureStubs:
    def test_stub_frame_round_trips(self):
        stubs = [{"app": "spmz", "core": "medium", "cache": "64M:512K",
                  "memory": "4chDDR4", "frequency": 2.0, "vector": v,
                  "cores": 64, "failed": True, "error": "boom",
                  "attempts": a}
                 for v, a in ((128, 1), (256, 3))]
        frame = ResultFrame.from_records(stubs)
        assert frame.column_kind("failed") == "obj"  # bools stay bools
        assert frame.to_records() == stubs
        assert frame.canonical_lines() == \
            [canonical_dumps(s) for s in stubs]
        back = ResultFrame.from_block_payload(
            canonical_loads(frame.to_block_line())[BLOCK_KEY])
        assert back.to_records() == stubs

    def test_none_and_nonfinite_sentinels(self):
        recs = [{"x": None, "y": float("nan"), "z": 1.5},
                {"x": 2.0, "y": float("inf"), "z": float("-inf")}]
        frame = ResultFrame.from_records(recs)
        lines = frame.canonical_lines()
        assert lines[0] == ('{"x":null,"y":{"__nonfinite__":"nan"},'
                            '"z":1.5}')
        assert lines[1] == ('{"x":2.0,"y":{"__nonfinite__":"inf"},'
                            '"z":{"__nonfinite__":"-inf"}}')
        assert frame.cell("x", 0) is None
        back = ResultFrame.from_block_payload(
            canonical_loads(frame.to_block_line())[BLOCK_KEY])
        assert back.canonical_lines() == lines


class TestFrameBasics:
    def test_reserved_keys_rejected(self):
        with pytest.raises(ValueError):
            ResultFrame.from_records([{"__nonfinite__": 1}])
        with pytest.raises(ValueError):
            ResultFrame.from_records([{BLOCK_KEY: 1}])

    def test_mixed_schema_rejected(self):
        with pytest.raises(ValueError):
            ResultFrame.from_records([{"a": 1}, {"b": 2}])

    def test_unknown_block_schema_rejected(self):
        frame = ResultFrame.from_records([{"a": 1}])
        payload = dict(frame.to_block_payload())
        payload["schema"] = 99
        with pytest.raises(ValueError):
            ResultFrame.from_block_payload(payload)

    def test_frame_row_is_lazy_mapping(self):
        frame = ResultFrame.from_records([{"a": 1, "b": 2.5}])
        row = frame.row(0)
        assert isinstance(row, FrameRow)
        assert row == {"a": 1, "b": 2.5}
        assert row["a"] == 1 and type(row["a"]) is int
        assert row["b"] == 2.5 and type(row["b"]) is float
        assert json.dumps(row.to_dict(), sort_keys=True) == \
            '{"a": 1, "b": 2.5}'

    @settings(max_examples=60, deadline=None)
    @given(v=_SCALARS)
    def test_scalar_fragment_matches_canonical_dumps(self, v):
        assert scalar_fragment(v) == canonical_dumps(v)
