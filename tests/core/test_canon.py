"""Canonical-serializer contract: valid JSON, stable digests, exact
non-finite round-trips.

PR 8 regression pins: journal/ResultSet/store persistence used bare
``json.dumps``, which (a) emits non-JSON ``NaN``/``Infinity`` tokens
and (b) serializes equal dicts to different bytes depending on key
insertion order — both fatal for a content-addressed store.
"""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.canon import (
    NONFINITE_KEY,
    canonical_dumps,
    canonical_loads,
    content_digest,
)
from repro.core.checkpoint import Journal, replay_journal
from repro.core.results import ResultSet


def _sample_record(**overrides):
    rec = {
        "app": "lulesh", "core": "medium", "cache": "64M:512K",
        "memory": "4chDDR4", "frequency": 2.0, "vector": 128, "cores": 64,
        "time_ns": 1.25e9, "energy_j": None,
    }
    rec.update(overrides)
    return rec


class TestValidJson:
    def test_nan_inf_emit_valid_interchange_json(self):
        text = canonical_dumps({"a": math.nan, "b": math.inf,
                                "c": -math.inf})
        # Parsable by a strict reader that rejects NaN/Infinity tokens.
        json.loads(text, parse_constant=lambda tok: pytest.fail(
            f"non-JSON token {tok!r} in canonical output"))

    def test_bare_dumps_would_not_be_valid(self):
        # The defect being fixed: stdlib default emits a NaN token.
        assert "NaN" in json.dumps({"a": math.nan})

    def test_reserved_key_rejected(self):
        with pytest.raises(ValueError):
            canonical_dumps({NONFINITE_KEY: "nan"})


class TestRoundTrip:
    def test_nonfinite_round_trip_exact(self):
        obj = {"nan": math.nan, "inf": math.inf, "ninf": -math.inf,
               "nested": [1.5, {"x": math.nan}], "none": None}
        back = canonical_loads(canonical_dumps(obj))
        assert math.isnan(back["nan"])
        assert back["inf"] == math.inf
        assert back["ninf"] == -math.inf
        assert back["nested"][0] == 1.5
        assert math.isnan(back["nested"][1]["x"])
        assert back["none"] is None

    def test_legacy_tokens_still_load(self):
        # Pre-PR 8 journals carry bare NaN/Infinity tokens; the loader
        # must keep reading them.
        back = canonical_loads('{"a": NaN, "b": Infinity}')
        assert math.isnan(back["a"]) and back["b"] == math.inf

    def test_invalid_sentinel_rejected(self):
        with pytest.raises(ValueError):
            canonical_loads('{"__nonfinite__": "bogus"}')

    def test_reserved_key_rejected(self):
        # A user mapping may never use the sentinel key, else decoding
        # would be ambiguous with the non-finite float encoding.
        with pytest.raises(ValueError):
            canonical_dumps({NONFINITE_KEY: "nan"})

    @given(st.recursive(
        st.none() | st.booleans() | st.integers(-2**53, 2**53)
        | st.floats(allow_nan=True, allow_infinity=True) | st.text(),
        # The sentinel key is reserved: canonical_dumps rejects maps
        # containing it (pinned by test_reserved_key_rejected below).
        lambda leaf: st.lists(leaf, max_size=4)
        | st.dictionaries(st.text().filter(lambda k: k != NONFINITE_KEY),
                          leaf, max_size=4),
        max_leaves=16))
    def test_round_trip_property(self, obj):
        back = canonical_loads(canonical_dumps(obj))
        # NaN != NaN, so compare via a NaN-stable canonical re-dump.
        assert canonical_dumps(back) == canonical_dumps(obj)


class TestDigestStability:
    def test_key_order_invariant(self):
        a = {"x": 1, "y": [2.5, {"p": 1, "q": 2}]}
        b = {"y": [2.5, {"q": 2, "p": 1}], "x": 1}
        assert content_digest(a) == content_digest(b)

    def test_digest_stable_across_serialize_parse_cycle(self):
        obj = _sample_record(time_ns=math.inf, bw_utilization=math.nan)
        once = content_digest(obj)
        again = content_digest(canonical_loads(canonical_dumps(obj)))
        assert once == again

    def test_distinct_values_distinct_digests(self):
        assert content_digest({"a": 1}) != content_digest({"a": 2})
        assert content_digest({"a": math.nan}) != content_digest({"a": None})


class TestPersistenceRoutesThroughCanon:
    def test_journal_round_trips_nonfinite_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        rec = _sample_record(time_ns=math.inf, mpki_l1=math.nan)
        with Journal(path) as j:
            j.append(rec)
        # The file itself is strict interchange JSON...
        line = path.read_text().strip()
        json.loads(line, parse_constant=lambda tok: pytest.fail(
            f"non-JSON token {tok!r} in journal"))
        # ...and replays to the exact same floats.
        out = replay_journal(path)
        (got,) = list(out.results)
        assert got["time_ns"] == math.inf
        assert math.isnan(got["mpki_l1"])

    def test_resultset_save_is_byte_stable(self, tmp_path):
        rec = _sample_record()
        shuffled = dict(reversed(list(rec.items())))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        ResultSet([rec]).save(a)
        ResultSet([shuffled]).save(b)
        assert a.read_bytes() == b.read_bytes()
        assert ResultSet.load(a) == ResultSet.load(b)
