"""Tests for :mod:`repro.util` — the shared LRU memo dict.

The eviction path is hot (it runs inside memo inserts on the batched
evaluation fast path), so beyond the LRU semantics these tests pin the
PR 8 bugfix: evictions are counted in one batched ``inc(n)`` per
``__setitem__`` call through a cached module-level metrics lookup, not
an import-machinery round-trip per evicted entry.
"""

import repro.util as util
from repro.obs import MetricsRegistry, set_metrics
from repro.util import LruDict


class TestLruSemantics:
    def test_reads_refresh_recency(self):
        d = LruDict(2)
        d["a"] = 1
        d["b"] = 2
        assert d["a"] == 1  # refresh "a"
        d["c"] = 3          # evicts "b", the LRU entry
        assert "a" in d and "c" in d and "b" not in d

    def test_get_refreshes_and_defaults(self):
        d = LruDict(2)
        d["a"] = 1
        d["b"] = 2
        assert d.get("a") == 1
        assert d.get("missing", 42) == 42
        d["c"] = 3
        assert "b" not in d and "a" in d

    def test_maxsize_validation(self):
        try:
            LruDict(0)
        except ValueError:
            pass
        else:  # pragma: no cover - guard
            raise AssertionError("maxsize=0 must be rejected")


class TestEvictionCounting:
    def test_single_eviction_counted(self):
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            d = LruDict(1, eviction_counter="test.lru.evictions")
            d["a"] = 1
            d["b"] = 2  # evicts "a"
            assert reg.counter("test.lru.evictions") == 1
        finally:
            set_metrics(prev)

    def test_multi_eviction_batched_into_one_inc(self):
        # Shrinking maxsize makes one insert evict several entries; the
        # counter must reflect every eviction even though only one
        # (batched) inc runs per __setitem__ call.
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            d = LruDict(4, eviction_counter="test.lru.evictions")
            for i in range(4):
                d[i] = i
            assert reg.counter("test.lru.evictions") == 0
            d.maxsize = 1
            d["x"] = 99  # one call, four evictions (0, 1, 2, 3)
            assert reg.counter("test.lru.evictions") == 4
            assert list(d) == ["x"]
        finally:
            set_metrics(prev)

    def test_no_eviction_no_metrics_touch(self):
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            d = LruDict(8, eviction_counter="test.lru.evictions")
            for i in range(8):
                d[i] = i
            assert reg.counter("test.lru.evictions") == 0
        finally:
            set_metrics(prev)

    def test_metrics_lookup_cached_but_registry_swap_respected(self):
        # The module caches the get_metrics *function* (one import per
        # process), never a registry instance — a set_metrics swap after
        # the first eviction must still route counts to the new registry.
        d = LruDict(1, eviction_counter="test.lru.evictions")
        reg_a = MetricsRegistry()
        prev = set_metrics(reg_a)
        try:
            d["a"] = 1
            d["b"] = 2  # first eviction resolves and caches the lookup
            assert util._get_metrics is not None
            assert reg_a.counter("test.lru.evictions") == 1
            reg_b = MetricsRegistry()
            set_metrics(reg_b)
            d["c"] = 3
            assert reg_b.counter("test.lru.evictions") == 1
            assert reg_a.counter("test.lru.evictions") == 1
        finally:
            set_metrics(prev)
