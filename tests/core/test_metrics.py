"""Tests for evaluation metrics."""

import pytest

from repro.core import geo_mean, normalized_energy, parallel_efficiency, speedup


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 50.0) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestParallelEfficiency:
    def test_perfect(self):
        assert parallel_efficiency(64.0, 1.0, 64) == pytest.approx(1.0)

    def test_half(self):
        assert parallel_efficiency(64.0, 2.0, 64) == pytest.approx(0.5)

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 1.0, 0)


class TestNormalizedEnergy:
    def test_ratio(self):
        assert normalized_energy(10.0, 5.0) == pytest.approx(0.5)

    def test_none_propagates(self):
        assert normalized_energy(None, 5.0) is None
        assert normalized_energy(10.0, None) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalized_energy(0.0, 1.0)


class TestGeoMean:
    def test_known_value(self):
        assert geo_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_invariance(self):
        assert geo_mean([2.0, 0.5]) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geo_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geo_mean([1.0, 0.0])


class TestEnergyDelay:
    def test_edp(self):
        from repro.core import energy_delay_product

        assert energy_delay_product(10.0, 2.0) == pytest.approx(20.0)
        assert energy_delay_product(None, 2.0) is None
        with pytest.raises(ValueError):
            energy_delay_product(0.0, 1.0)

    def test_ed2p(self):
        from repro.core import energy_delay_squared

        assert energy_delay_squared(10.0, 2.0) == pytest.approx(40.0)
        assert energy_delay_squared(None, 2.0) is None
