"""Tests for the ResultSet container."""

import math

import pytest

from repro.core import ResultSet


def rec(app="a", core="medium", cache="64M:512K", memory="4chDDR4",
        frequency=2.0, vector=128, cores=64, **extra):
    base = dict(app=app, core=core, cache=cache, memory=memory,
                frequency=frequency, vector=vector, cores=cores)
    base.update(extra)
    return base


class TestBasics:
    def test_add_and_len(self):
        rs = ResultSet()
        rs.add(rec(time_ns=1.0))
        assert len(rs) == 1

    def test_duplicate_config_rejected(self):
        rs = ResultSet([rec()])
        with pytest.raises(ValueError, match="duplicate"):
            rs.add(rec())

    def test_missing_config_keys_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            ResultSet([{"app": "a"}])

    def test_lookup(self):
        rs = ResultSet([rec(vector=128, time_ns=1.0),
                        rec(vector=256, time_ns=2.0)])
        assert rs.lookup(**rec(vector=256))["time_ns"] == 2.0

    def test_lookup_missing(self):
        rs = ResultSet([rec()])
        with pytest.raises(KeyError):
            rs.lookup(**rec(vector=512))


class TestAddCopySemantics:
    """Regression for the PR 10 data-plane fix: ``add`` copied every
    record unconditionally; trusted paths (load, frame rows, journal
    replay) now skip the defensive copy."""

    def test_default_add_copies(self):
        r = rec(time_ns=1.0)
        rs = ResultSet()
        rs.add(r)
        r["time_ns"] = 999.0  # caller mutates after insert
        assert rs.lookup(**rec())["time_ns"] == 1.0

    def test_trusted_add_adopts_the_record(self):
        r = rec(time_ns=1.0)
        rs = ResultSet()
        rs.add(r, copy=False)
        assert rs.lookup(**rec()) is r

    def test_frame_rows_are_never_copied(self):
        from repro.core.frame import ResultFrame

        frame = ResultFrame.from_records([rec(time_ns=1.0)])
        rs = ResultSet()
        rs.add(frame.row(0))
        entry = next(rs.lazy())
        assert entry.frame is frame  # still the lazy view, not a dict

    def test_load_round_trip_unchanged(self, tmp_path):
        rs = ResultSet([rec(vector=128, time_ns=1.0),
                        rec(vector=256, time_ns=2.0)])
        rs.save(tmp_path / "r.json")
        assert ResultSet.load(tmp_path / "r.json") == rs


class TestPartner:
    def test_partner_pairs_on_other_axes(self):
        rs = ResultSet([
            rec(vector=128, frequency=2.0, time_ns=10.0),
            rec(vector=512, frequency=2.0, time_ns=5.0),
            rec(vector=128, frequency=3.0, time_ns=8.0),
            rec(vector=512, frequency=3.0, time_ns=4.0),
        ])
        sample = rs.lookup(**rec(vector=512, frequency=3.0))
        base = rs.partner(sample, vector=128)
        assert base["frequency"] == 3.0
        assert base["time_ns"] == 8.0


class TestQueries:
    def _rs(self):
        return ResultSet([
            rec(app="a", vector=128, time_ns=10.0, energy_j=1.0),
            rec(app="a", vector=256, time_ns=8.0, energy_j=None),
            rec(app="b", vector=128, time_ns=20.0, energy_j=3.0),
        ])

    def test_filter_equality(self):
        assert len(self._rs().filter(app="a")) == 2

    def test_filter_predicate(self):
        rs = self._rs().filter(predicate=lambda r: r["time_ns"] < 15)
        assert len(rs) == 2

    def test_values_none_becomes_nan(self):
        vals = self._rs().values("energy_j")
        assert math.isnan(vals[1])
        assert vals[0] == 1.0

    def test_unique(self):
        assert self._rs().unique("app") == ["a", "b"]

    def test_group_mean_skips_none(self):
        means = self._rs().group_mean(["app"], "energy_j")
        assert means[("a",)] == pytest.approx(1.0)
        assert means[("b",)] == pytest.approx(3.0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        rs = ResultSet([rec(time_ns=1.5, energy_j=None)])
        path = tmp_path / "results.json"
        rs.save(path)
        back = ResultSet.load(path)
        assert len(back) == 1
        assert back.lookup(**rec())["energy_j"] is None
