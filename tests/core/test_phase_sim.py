"""Tests for detailed phase simulation."""

import pytest

from repro.apps import get_app
from repro.core import simulate_phase_detailed


@pytest.fixture(scope="module")
def spmz():
    app = get_app("spmz")
    return app, app.detailed_trace(), app.iteration_phases()


class TestSimulatePhaseDetailed:
    def test_basic_outputs(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        assert d.makespan_ns > 0
        assert d.busy_core_ns > 0
        assert 1 <= d.n_busy_cores <= 64
        assert d.instructions > 0
        assert 0 < d.occupancy <= 1.0

    def test_event_totals_scale_with_tasks(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        sig = detailed["sp_solve"]
        work = sum(t.work_units for t in phases[0].tasks)
        # Instruction totals = per-unit fused instructions x total work.
        from repro.uarch import vectorize

        expected = sig.instr_per_unit * vectorize(sig, 128).instr_scale * work
        assert d.instructions == pytest.approx(expected, rel=1e-6)

    def test_concurrency_capped_by_tasks(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        assert d.n_busy_cores <= phases[0].n_tasks

    def test_imbalance_preserved(self, spmz, node64):
        """Trace-level intra-phase imbalance survives re-timing."""
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64,
                                    collect_spans=True)
        durs = [s.duration_ns for s in d.schedule.spans]
        assert max(durs) / (sum(durs) / len(durs)) > 1.05

    def test_store_fraction_sane(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        assert 0.0 <= d.store_fraction <= 1.0

    def test_row_hit_weighted(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        rhs = [detailed[k].row_hit_rate for k in detailed.names()]
        assert min(rhs) - 1e-9 <= d.row_hit_rate <= max(rhs) + 1e-9

    def test_faster_node_shorter_makespan(self, spmz):
        from repro.config import baseline_node

        app, detailed, phases = spmz
        slow = simulate_phase_detailed(phases[0], detailed,
                                       baseline_node(64).with_(core="lowend"))
        fast = simulate_phase_detailed(
            phases[0], detailed,
            baseline_node(64).with_(core="aggressive", vector_bits=512))
        assert fast.makespan_ns < slow.makespan_ns

    def test_empty_phase(self, node64):
        from repro.trace import ComputePhase, DetailedTrace

        app = get_app("hydro")
        empty = ComputePhase(phase_id=0, tasks=(), serial_ns=500.0)
        d = simulate_phase_detailed(empty, app.detailed_trace(), node64)
        assert d.makespan_ns == pytest.approx(500.0)
        assert d.instructions == 0.0

    def test_refinement_converges(self, spmz, node64):
        app, detailed, phases = spmz
        d1 = simulate_phase_detailed(phases[0], detailed, node64, n_refine=1)
        d4 = simulate_phase_detailed(phases[0], detailed, node64, n_refine=4)
        assert d4.makespan_ns == pytest.approx(d1.makespan_ns, rel=0.25)

    def test_rejects_bad_refine(self, spmz, node64):
        app, detailed, phases = spmz
        with pytest.raises(ValueError):
            simulate_phase_detailed(phases[0], detailed, node64, n_refine=0)
