"""Tests for detailed phase simulation."""

import pytest

from repro.apps import get_app
from repro.core import simulate_phase_detailed


@pytest.fixture(scope="module")
def spmz():
    app = get_app("spmz")
    return app, app.detailed_trace(), app.iteration_phases()


class TestSimulatePhaseDetailed:
    def test_basic_outputs(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        assert d.makespan_ns > 0
        assert d.busy_core_ns > 0
        assert 1 <= d.n_busy_cores <= 64
        assert d.instructions > 0
        assert 0 < d.occupancy <= 1.0

    def test_event_totals_scale_with_tasks(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        sig = detailed["sp_solve"]
        work = sum(t.work_units for t in phases[0].tasks)
        # Instruction totals = per-unit fused instructions x total work.
        from repro.uarch import vectorize

        expected = sig.instr_per_unit * vectorize(sig, 128).instr_scale * work
        assert d.instructions == pytest.approx(expected, rel=1e-6)

    def test_concurrency_capped_by_tasks(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        assert d.n_busy_cores <= phases[0].n_tasks

    def test_imbalance_preserved(self, spmz, node64):
        """Trace-level intra-phase imbalance survives re-timing."""
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64,
                                    collect_spans=True)
        durs = [s.duration_ns for s in d.schedule.spans]
        assert max(durs) / (sum(durs) / len(durs)) > 1.05

    def test_store_fraction_sane(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        assert 0.0 <= d.store_fraction <= 1.0

    def test_row_hit_weighted(self, spmz, node64):
        app, detailed, phases = spmz
        d = simulate_phase_detailed(phases[0], detailed, node64)
        rhs = [detailed[k].row_hit_rate for k in detailed.names()]
        assert min(rhs) - 1e-9 <= d.row_hit_rate <= max(rhs) + 1e-9

    def test_faster_node_shorter_makespan(self, spmz):
        from repro.config import baseline_node

        app, detailed, phases = spmz
        slow = simulate_phase_detailed(phases[0], detailed,
                                       baseline_node(64).with_(core="lowend"))
        fast = simulate_phase_detailed(
            phases[0], detailed,
            baseline_node(64).with_(core="aggressive", vector_bits=512))
        assert fast.makespan_ns < slow.makespan_ns

    def test_empty_phase(self, node64):
        from repro.trace import ComputePhase, DetailedTrace

        app = get_app("hydro")
        empty = ComputePhase(phase_id=0, tasks=(), serial_ns=500.0)
        d = simulate_phase_detailed(empty, app.detailed_trace(), node64)
        assert d.makespan_ns == pytest.approx(500.0)
        assert d.instructions == 0.0

    def test_refinement_converges(self, spmz, node64):
        app, detailed, phases = spmz
        d1 = simulate_phase_detailed(phases[0], detailed, node64, n_refine=1)
        d4 = simulate_phase_detailed(phases[0], detailed, node64, n_refine=4)
        assert d4.makespan_ns == pytest.approx(d1.makespan_ns, rel=0.25)

    def test_rejects_bad_refine(self, spmz, node64):
        app, detailed, phases = spmz
        with pytest.raises(ValueError):
            simulate_phase_detailed(phases[0], detailed, node64, n_refine=0)


class TestTimingCacheKey:
    def test_same_label_different_config_not_conflated(self, spmz, node64):
        """Regression: the kernel-timing memo must key on the *full*
        node configuration, not its label.

        Two nodes whose cores share the label ``medium`` but differ in
        every pipeline parameter used to collide in a shared
        ``timing_cache``, silently reusing whichever node was simulated
        first.
        """
        from dataclasses import replace

        from repro.config import core_preset

        app, detailed, phases = spmz
        weak_core = replace(core_preset("medium"), rob_size=40,
                            issue_width=2, n_fpu=1)
        assert weak_core.label == node64.core.label
        weak = node64.with_(core=weak_core)

        cache = {}
        d_strong = simulate_phase_detailed(phases[0], detailed, node64,
                                           timing_cache=cache)
        d_weak = simulate_phase_detailed(phases[0], detailed, weak,
                                         timing_cache=cache)
        # Fresh caches give the ground truth for each node.
        t_strong = simulate_phase_detailed(phases[0], detailed, node64)
        t_weak = simulate_phase_detailed(phases[0], detailed, weak)
        assert d_strong.makespan_ns == t_strong.makespan_ns
        assert d_weak.makespan_ns == t_weak.makespan_ns
        assert d_weak.makespan_ns != d_strong.makespan_ns


class TestZeroWorkTasks:
    def _phase_with_empty_partition(self, detailed):
        from repro.trace import ComputePhase, TaskRecord

        kernel = next(iter(detailed.names()))
        tasks = tuple(
            TaskRecord(kernel=kernel, duration_ns=d, work_units=w)
            for d, w in ((1000.0, 2.0), (0.0, 0.0), (1500.0, 3.0))
        )
        return ComputePhase(phase_id=0, tasks=tasks)

    def test_zero_work_task_simulates(self, spmz, node64):
        """Regression: a zero-work task (an empty partition of an
        irregular decomposition) raised ZeroDivisionError in
        ``_imbalance_factors``."""
        app, detailed, phases = spmz
        phase = self._phase_with_empty_partition(detailed)
        d = simulate_phase_detailed(phase, detailed, node64)
        assert d.makespan_ns > 0

    def test_zero_work_factor_is_neutral(self, spmz):
        from repro.core.phase_sim import _imbalance_factors

        app, detailed, phases = spmz
        phase = self._phase_with_empty_partition(detailed)
        factors = _imbalance_factors(phase)
        assert factors[1] == 1.0
        # Siblings keep their relative per-unit imbalance (500 vs 500).
        assert factors[0] == pytest.approx(factors[2])

    def test_zero_work_contributes_no_events(self, spmz, node64):
        app, detailed, phases = spmz
        phase = self._phase_with_empty_partition(detailed)
        with_zero = simulate_phase_detailed(phase, detailed, node64)
        from repro.trace import ComputePhase

        trimmed = ComputePhase(phase_id=0, tasks=(phase.tasks[0],
                                                  phase.tasks[2]))
        without = simulate_phase_detailed(trimmed, detailed, node64)
        assert with_zero.instructions == pytest.approx(without.instructions)
