"""Tests for the batched config-major evaluation engine.

The contract under test is strong: the column-wise batched evaluator
must be *bitwise* identical to per-config ``Musa.simulate_node`` —
every float in every record — so the batch axis never perturbs science
results, only throughput.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import APP_NAMES, get_app
from repro.config import DesignSpace
from repro.core import BatchEvaluator, run_sweep
from repro.core.batch import BatchEvaluator as _BE
from repro.core.musa import Musa
from repro.obs import get_metrics


@pytest.fixture(scope="module")
def full_space():
    return list(DesignSpace())


@pytest.fixture(scope="module")
def tiny_space():
    return DesignSpace(
        core_labels=("medium", "lowend"),
        cache_labels=("64M:512K",),
        memory_labels=("4chDDR4", "16chHBM"),
        frequencies=(2.0,),
        vector_widths=(128, 512),
        core_counts=(64,),
    )


def _scalar_records(app_name, nodes):
    m = Musa(get_app(app_name))
    return [m.simulate_node(n).record() for n in nodes]


def _batched_records(app_name, nodes):
    ev = BatchEvaluator(Musa(get_app(app_name)))
    return [r.record() for r in ev.evaluate(list(nodes))]


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("app_name", APP_NAMES)
    def test_bitwise_equal_on_space_slice(self, app_name, full_space):
        # A stratified slice of the 864-point space: every 37th point
        # walks all six axes out of phase with each other.
        nodes = full_space[::37]
        assert _batched_records(app_name, nodes) == \
            _scalar_records(app_name, nodes)

    @settings(max_examples=15, deadline=None)
    @given(app_name=st.sampled_from(APP_NAMES),
           idx=st.lists(st.integers(0, 863), min_size=1, max_size=6,
                        unique=True))
    def test_bitwise_equal_property(self, app_name, idx, full_space):
        nodes = [full_space[i] for i in idx]
        assert _batched_records(app_name, nodes) == \
            _scalar_records(app_name, nodes)

    def test_batch_size_invariance(self, full_space):
        """Splitting one batch arbitrarily cannot change any result."""
        nodes = full_space[::101]
        whole = _batched_records("lulesh", nodes)
        ev = BatchEvaluator(Musa(get_app("lulesh")))
        halves = [r.record()
                  for part in (nodes[:len(nodes) // 2],
                               nodes[len(nodes) // 2:])
                  for r in ev.evaluate(part)]
        singles = _batched_records("lulesh", [nodes[0]])
        assert whole == halves
        assert whole[0] == singles[0]

    def test_counter_parity(self, tiny_space):
        """Batched evaluation counts one musa.simulate_node per config,
        exactly like the scalar path (resume tests depend on this)."""
        nodes = list(tiny_space)
        reg = get_metrics()
        before = reg.counter("musa.simulate_node")
        _batched_records("spmz", nodes)
        assert reg.counter("musa.simulate_node") - before == len(nodes)


class TestSweepBatching:
    def test_batched_sweep_equals_scalar_sweep(self, tiny_space):
        batched = run_sweep(["spmz", "hydro"], tiny_space, processes=1,
                            batch=True, batch_size=8)
        scalar = run_sweep(["spmz", "hydro"], tiny_space, processes=1,
                           batch=False)
        assert list(batched) == list(scalar)

    def test_pooled_batched_sweep_equals_scalar(self, tiny_space):
        batched = run_sweep(["btmz"], tiny_space, processes=2,
                            chunk_size=4, batch=True, batch_size=4)
        scalar = run_sweep(["btmz"], tiny_space, processes=1, batch=False)
        assert list(batched) == list(scalar)

    def test_batch_counters_surface_in_metrics(self, tiny_space):
        reg = get_metrics()
        before = reg.counter("sweep.batch.configs")
        run_sweep(["spmz"], tiny_space, processes=1, batch=True,
                  batch_size=8)
        assert reg.counter("sweep.batch.configs") - before == 8

    def test_evaluator_failure_falls_back_to_scalar(self, tiny_space,
                                                    monkeypatch):
        """A broken batched evaluator degrades throughput, not coverage:
        the batch re-runs per-config and still completes bit-identically."""
        def boom(self, nodes, **kw):
            raise RuntimeError("injected evaluator bug")

        monkeypatch.setattr(_BE, "evaluate", boom)
        monkeypatch.setattr(_BE, "evaluate_frame", boom)
        reg = get_metrics()
        before = reg.counter("sweep.batch.fallback")
        rs = run_sweep(["spmz"], tiny_space, processes=1, batch=True,
                       batch_size=8)
        assert reg.counter("sweep.batch.fallback") - before >= 1
        monkeypatch.undo()
        scalar = run_sweep(["spmz"], tiny_space, processes=1, batch=False)
        assert list(rs) == list(scalar)

    def test_batch_size_validation(self, tiny_space):
        with pytest.raises(ValueError):
            run_sweep(["spmz"], tiny_space, batch_size=0)


class TestBoundedMemos:
    """PR 8 regression: the evaluator's miss/vec memos were the last
    unbounded plain dicts — a leak in any long-lived process."""

    def test_small_cap_evicts_and_stays_bounded(self, tiny_space):
        reg = get_metrics()
        before = reg.counter("batch.memo.evictions")
        ev = BatchEvaluator(Musa(get_app("spmz")), memo_cap=2)
        nodes = list(tiny_space)
        res = ev.evaluate(nodes)
        assert len(ev._miss_memo) <= 2
        assert len(ev._vec_memo) <= 2
        assert reg.counter("batch.memo.evictions") > before
        # Eviction changes memory behaviour only, never results.
        ref = BatchEvaluator(Musa(get_app("spmz"))).evaluate(nodes)
        assert [r.record() for r in res] == [r.record() for r in ref]

    def test_default_cap_never_evicts_on_tiny_space(self, tiny_space):
        reg = get_metrics()
        before = reg.counter("batch.memo.evictions")
        BatchEvaluator(Musa(get_app("spmz"))).evaluate(list(tiny_space))
        assert reg.counter("batch.memo.evictions") == before
