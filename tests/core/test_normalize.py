"""Tests for the paired normalization (Sec. V-B methodology)."""

import pytest

from repro.core import ResultSet, axis_table, normalize_axis


def grid_results():
    """A tiny 2-axis grid with known ratios."""
    rs = ResultSet()
    for app in ("a", "b"):
        for cores in (32, 64):
            for freq in (2.0, 3.0):
                for vector in (128, 256):
                    speed = (vector / 128) * (2.0 if app == "b" else 1.0)
                    rs.add(dict(
                        app=app, core="medium", cache="64M:512K",
                        memory="4chDDR4", frequency=freq, vector=vector,
                        cores=cores,
                        time_ns=1000.0 / speed,
                        power_total_w=100.0 * (vector / 128) ** 0.5,
                        energy_j=None if vector == 256 and app == "b" else 5.0,
                    ))
    return rs


class TestNormalizeAxis:
    def test_time_inverted_to_speedup(self):
        bars = normalize_axis(grid_results(), "vector", 128, "time_ns")
        for b in bars:
            if b.value == 256:
                assert b.mean == pytest.approx(2.0)
            else:
                assert b.mean == pytest.approx(1.0)

    def test_power_not_inverted(self):
        bars = normalize_axis(grid_results(), "vector", 128, "power_total_w")
        b256 = [b for b in bars if b.value == 256][0]
        assert b256.mean == pytest.approx(2 ** 0.5)

    def test_sample_counts(self):
        bars = normalize_axis(grid_results(), "vector", 128, "time_ns")
        # per (app, cores, value): 2 frequency partners
        assert all(b.n_samples == 2 for b in bars)

    def test_none_metric_skipped(self):
        bars = normalize_axis(grid_results(), "vector", 128, "energy_j")
        # app b's 256-bit energy is None -> no (b, 256) bar; the trivial
        # (b, 128) self-ratio remains.
        assert not [b for b in bars if b.app == "b" and b.value == 256]
        assert [b for b in bars if b.app == "a" and b.value == 256]

    def test_std_zero_for_uniform_ratios(self):
        bars = normalize_axis(grid_results(), "vector", 128, "time_ns")
        assert all(b.std == pytest.approx(0.0, abs=1e-12) for b in bars)

    def test_rejects_app_axis(self):
        with pytest.raises(ValueError):
            normalize_axis(grid_results(), "app", "a", "time_ns")

    def test_rejects_nonpositive_metric(self):
        rs = grid_results()
        for r in rs:
            r["bad"] = 0.0
        with pytest.raises(ValueError):
            normalize_axis(rs, "vector", 128, "bad")


class TestAxisTable:
    def test_panel_layout(self):
        bars = normalize_axis(grid_results(), "vector", 128, "time_ns")
        table = axis_table(bars, apps=("a", "b"), values=(128, 256), cores=64)
        assert table["a"][256][0] == pytest.approx(2.0)
        assert table["b"][128][0] == pytest.approx(1.0)

    def test_missing_value_raises(self):
        bars = normalize_axis(grid_results(), "vector", 128, "time_ns")
        with pytest.raises(ValueError, match="incomplete"):
            axis_table(bars, apps=("a",), values=(128, 512), cores=64)
