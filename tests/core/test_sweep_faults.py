"""Crash-injection tests for the fault-tolerant sweep engine.

A deterministic fault hook kills chosen attempts of chosen tasks; the
sweep must retry, complete, and produce a ResultSet identical to an
uninterrupted run — or, once retries are exhausted, degrade gracefully
to a failed-task stub instead of aborting the campaign.
"""

import time

import pytest

from repro.config import DesignSpace
from repro.core import (
    FailNTimes,
    SweepAbort,
    run_sweep,
)
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def tiny_space():
    """A 2x2 slice of the full space (vector x memory)."""
    return DesignSpace(
        core_labels=("medium",),
        cache_labels=("64M:512K",),
        memory_labels=("4chDDR4", "8chDDR4"),
        frequencies=(2.0,),
        vector_widths=(128, 512),
        core_counts=(64,),
    )


@pytest.fixture(scope="module")
def clean_run(tiny_space):
    """The uninterrupted reference sweep."""
    return run_sweep(["spmz"], tiny_space, processes=1)


class _SleepHook:
    """Fault hook that stalls every first attempt past the task budget."""

    def __init__(self, seconds):
        self.seconds = seconds

    def __call__(self, app_name, node, attempt):
        if attempt == 0:
            time.sleep(self.seconds)


class TestInjectedFaults:
    def test_every_task_failing_once_still_completes(self, tiny_space,
                                                     clean_run):
        reg = MetricsRegistry()
        rs = run_sweep(["spmz"], tiny_space, processes=1,
                       fault_hook=FailNTimes(times=1),
                       retry_backoff_s=0.0, metrics=reg)
        assert rs == clean_run
        assert reg.counter("sweep.faults") == 4
        assert reg.counter("sweep.retries") == 4
        assert reg.counter("sweep.tasks.failed") == 0
        assert reg.counter("sweep.tasks.completed") == 4

    def test_single_task_fault_in_worker_pool(self, tiny_space, clean_run):
        victim = list(tiny_space)[1].label
        reg = MetricsRegistry()
        rs = run_sweep(["spmz"], tiny_space, processes=2, chunk_size=1,
                       fault_hook=FailNTimes(times=1, app="spmz",
                                             label=victim),
                       retry_backoff_s=0.0, metrics=reg)
        assert rs == clean_run
        assert reg.counter("sweep.retries") == 1
        assert reg.counter("sweep.tasks.failed") == 0

    def test_exhausted_retries_record_failure_stub(self, tiny_space,
                                                   clean_run):
        victim = list(tiny_space)[2].label
        reg = MetricsRegistry()
        rs = run_sweep(["spmz"], tiny_space, processes=1,
                       fault_hook=FailNTimes(times=99, label=victim),
                       max_retries=1, retry_backoff_s=0.0, metrics=reg)
        assert len(rs) == 4  # campaign completed despite the bad point
        stubs = list(rs.failures())
        assert len(stubs) == 1
        stub = stubs[0]
        assert stub["failed"] is True
        assert "InjectedFault" in stub["error"]
        assert stub["attempts"] == 2  # first try + one retry
        assert reg.counter("sweep.tasks.failed") == 1
        assert reg.counter("sweep.tasks.completed") == 3
        # Surviving records are bit-identical to the clean run.
        for rec in rs.successes():
            cfg = {k: rec[k] for k in ("app", "core", "cache", "memory",
                                       "frequency", "vector", "cores")}
            assert clean_run.lookup(**cfg) == rec

    def test_per_task_timeout_enters_retry_path(self):
        space = DesignSpace(core_labels=("medium",),
                            cache_labels=("64M:512K",),
                            memory_labels=("4chDDR4",), frequencies=(2.0,),
                            vector_widths=(128,), core_counts=(64,))
        reg = MetricsRegistry()
        rs = run_sweep(["spmz"], space, processes=1,
                       fault_hook=_SleepHook(0.5), timeout_s=0.05,
                       max_retries=1, retry_backoff_s=0.0, metrics=reg)
        # Attempt 0 times out, attempt 1 (hook passive) succeeds.
        assert len(rs.failures()) == 0
        assert reg.counter("sweep.retries") == 1
        snap = reg.snapshot()
        assert "TaskTimeout" not in str(list(rs))  # retried, not stubbed
        assert snap["counters"]["sweep.faults"] == 1

    def test_fatal_fault_aborts_campaign(self, tiny_space):
        victim = list(tiny_space)[0].label
        with pytest.raises(SweepAbort):
            run_sweep(["spmz"], tiny_space, processes=1,
                      fault_hook=FailNTimes(times=1, fatal=True,
                                            label=victim))

    def test_backoff_delays_retries(self, tiny_space):
        t0 = time.perf_counter()
        rs = run_sweep(["spmz"],
                       DesignSpace(core_labels=("medium",),
                                   cache_labels=("64M:512K",),
                                   memory_labels=("4chDDR4",),
                                   frequencies=(2.0,), vector_widths=(128,),
                                   core_counts=(64,)),
                       processes=1, fault_hook=FailNTimes(times=2),
                       max_retries=2, retry_backoff_s=0.1)
        elapsed = time.perf_counter() - t0
        assert len(rs.failures()) == 0
        # Two retries with exponential backoff: >= 0.1 + 0.2 seconds.
        assert elapsed >= 0.3


class TestAbortDrainsCompletedWork:
    """Regression: an abort surfacing from one pool chunk used to throw
    away every *other* ready chunk's finished results and metrics."""

    class _Handle:
        def __init__(self, result=None, exc=None):
            self._result = result
            self._exc = exc

        def get(self):
            if self._exc is not None:
                raise self._exc
            return self._result

    def test_drain_ready_records_siblings_before_raising(self):
        from repro.core.sweep import _drain_ready

        class _FakeSched:
            def __init__(self):
                self.reg = MetricsRegistry()
                self.recorded = []

            def record_outcome(self, idx, attempt, ok, payload):
                self.recorded.append((idx, attempt, ok, payload))

        delta = {"counters": {"sweep.tasks.completed": 1}, "timers": {}}
        sched = _FakeSched()
        inflight = {
            0: self._Handle(result=([(0, 0, True, {"r": 0})], delta)),
            1: self._Handle(exc=SweepAbort("injected")),
            2: self._Handle(result=([(2, 0, True, {"r": 2})], delta)),
        }
        with pytest.raises(SweepAbort):
            _drain_ready(sched, inflight, [0, 1, 2])
        # Both sibling chunks were recorded and their metrics merged
        # before the abort surfaced; every handle was consumed.
        assert sorted(o[0] for o in sched.recorded) == [0, 2]
        assert sched.reg.counter("sweep.tasks.completed") == 2
        assert inflight == {}

    def test_pooled_abort_preserves_journal(self, tmp_path):
        from repro.core import load_checkpoint

        space = DesignSpace(core_labels=("medium",),
                            cache_labels=("64M:512K",),
                            memory_labels=("4chDDR4", "8chDDR4"),
                            frequencies=(2.0,), vector_widths=(128, 512),
                            core_counts=(32, 64))
        victim = list(space)[-1].label
        journal = tmp_path / "abort.jsonl"
        with pytest.raises(SweepAbort):
            run_sweep(["spmz"], space, processes=2, chunk_size=1,
                      resume=journal,
                      fault_hook=FailNTimes(times=1, fatal=True,
                                            label=victim))
        # The victim chunk is dispatched last and only once fewer than
        # 2 x processes chunks are inflight, so at least 4 of the other
        # 7 chunks were drained — and journaled — before the abort.
        rs = load_checkpoint(journal)
        assert len(rs) >= 4
        assert all(not r.get("failed") for r in rs)

    def test_inline_batched_abort_preserves_journal(self, tiny_space,
                                                    tmp_path):
        from repro.core import load_checkpoint

        victim = list(tiny_space)[-1].label
        journal = tmp_path / "abort.jsonl"
        with pytest.raises(SweepAbort):
            run_sweep(["spmz"], tiny_space, processes=1, batch=True,
                      batch_size=8, resume=journal,
                      fault_hook=FailNTimes(times=1, fatal=True,
                                            label=victim))
        # Members of the aborted batch that cleared their hooks before
        # the victim are evaluated and journaled, so a resumed campaign
        # only redoes the victim.
        rs = load_checkpoint(journal)
        assert len(rs) == 3


class TestTimeoutDegradation:
    """A requested timeout that cannot be armed (no SIGALRM, or not on
    the main thread) must degrade to an unbudgeted run — warn + count —
    instead of raising."""

    def test_deadline_on_worker_thread_degrades(self):
        import threading

        from repro.core.sweep import _deadline
        from repro.obs import get_metrics

        reg = get_metrics()
        before = reg.counter("sweep.timeout_unavailable")
        ran = []

        def body():
            with _deadline(0.5):
                ran.append(True)

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert ran == [True]
        assert reg.counter("sweep.timeout_unavailable") - before == 1

    def test_deadline_without_sigalrm_degrades(self, monkeypatch):
        import signal

        from repro.core.sweep import _deadline
        from repro.obs import get_metrics

        monkeypatch.delattr(signal, "SIGALRM")
        reg = get_metrics()
        before = reg.counter("sweep.timeout_unavailable")
        with _deadline(0.5):
            pass
        assert reg.counter("sweep.timeout_unavailable") - before == 1

    def test_no_timeout_requested_is_silent(self):
        from repro.core.sweep import _deadline
        from repro.obs import get_metrics

        reg = get_metrics()
        before = reg.counter("sweep.timeout_unavailable")
        with _deadline(None):
            pass
        assert reg.counter("sweep.timeout_unavailable") == before

    def test_sweep_from_worker_thread_completes(self):
        import threading

        space = DesignSpace(core_labels=("medium",),
                            cache_labels=("64M:512K",),
                            memory_labels=("4chDDR4",), frequencies=(2.0,),
                            vector_widths=(128,), core_counts=(64,))
        reg = MetricsRegistry()
        out = {}

        def body():
            out["rs"] = run_sweep(["spmz"], space, processes=1,
                                  timeout_s=30.0, metrics=reg)

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert len(out["rs"].failures()) == 0
        assert reg.counter("sweep.timeout_unavailable") >= 1
