"""Interrupt/resume tests for journaled sweeps.

A sweep killed mid-run (injected fatal fault) and resumed from its
journal must produce a ResultSet bit-identical to an uninterrupted
run, without re-simulating any journaled task (verified through the
obs counters).
"""

import json

import pytest

from repro.config import DesignSpace
from repro.core import (
    FailNTimes,
    SweepAbort,
    replay_journal,
    run_sweep,
)
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def space():
    return DesignSpace(core_labels=("medium",), cache_labels=("64M:512K",),
                       memory_labels=("4chDDR4", "8chDDR4"),
                       frequencies=(2.0,), vector_widths=(128, 512),
                       core_counts=(64,))


@pytest.fixture(scope="module")
def cold_run(space):
    return run_sweep(["spmz"], space, processes=1)


class TestResume:
    def test_killed_sweep_resumes_bit_identical(self, space, cold_run,
                                                tmp_path):
        journal = tmp_path / "sweep.jsonl"
        # Kill the campaign at the third task: two records journaled.
        victim = list(space)[2].label
        with pytest.raises(SweepAbort):
            run_sweep(["spmz"], space, processes=1, resume=journal,
                      fault_hook=FailNTimes(times=1, fatal=True,
                                            label=victim))
        assert len(replay_journal(journal).results) == 2

        reg = MetricsRegistry()
        resumed = run_sweep(["spmz"], space, processes=1, resume=journal,
                            metrics=reg)
        # No journaled task was re-simulated.
        assert reg.counter("sweep.tasks.skipped") == 2
        assert reg.counter("sweep.tasks.completed") == 2
        assert reg.counter("musa.simulate_node") == 2
        # Bit-identical to the uninterrupted run, including order.
        assert resumed == cold_run
        assert (json.dumps(list(resumed), sort_keys=True)
                == json.dumps(list(cold_run), sort_keys=True))

    def test_fully_resumed_sweep_simulates_nothing(self, space, cold_run,
                                                   tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(["spmz"], space, processes=1, resume=journal)
        size = journal.stat().st_size
        reg = MetricsRegistry()
        again = run_sweep(["spmz"], space, processes=1, resume=journal,
                          metrics=reg)
        assert reg.counter("sweep.tasks.completed") == 0
        assert reg.counter("musa.simulate_node") == 0
        assert reg.counter("sweep.tasks.skipped") == 4
        assert journal.stat().st_size == size  # nothing appended
        assert again == cold_run

    def test_parallel_resume_matches_cold_run(self, space, cold_run,
                                              tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(["spmz"], space, processes=1, resume=journal)
        # Keep only the first journal record (simulated crash), then
        # resume across a worker pool.
        lines = journal.read_text().strip().splitlines()
        journal.write_text(lines[0] + "\n")
        resumed = run_sweep(["spmz"], space, processes=2, chunk_size=1,
                            resume=journal)
        assert (json.dumps(list(resumed), sort_keys=True)
                == json.dumps(list(cold_run), sort_keys=True))

    def test_journaled_failure_stub_is_retried_on_resume(self, space,
                                                         cold_run,
                                                         tmp_path):
        journal = tmp_path / "sweep.jsonl"
        victim = list(space)[1].label
        rs = run_sweep(["spmz"], space, processes=1, resume=journal,
                       fault_hook=FailNTimes(times=99, label=victim),
                       max_retries=0, retry_backoff_s=0.0)
        assert len(rs.failures()) == 1
        replayed = replay_journal(journal)
        assert len(replayed.failed) == 1
        assert len(replayed.results) == 3

        reg = MetricsRegistry()
        healed = run_sweep(["spmz"], space, processes=1, resume=journal,
                           metrics=reg)
        # Only the previously-failed task is simulated.
        assert reg.counter("sweep.tasks.completed") == 1
        assert reg.counter("sweep.tasks.skipped") == 3
        assert len(healed.failures()) == 0
        assert healed == cold_run

    def test_resume_ignores_foreign_records(self, space, cold_run,
                                            tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(["hydro"], space, processes=1, resume=journal)
        # A different app's journal must not satisfy spmz's tasks.
        reg = MetricsRegistry()
        rs = run_sweep(["spmz"], space, processes=1, resume=journal,
                       metrics=reg)
        assert reg.counter("sweep.tasks.skipped") == 0
        assert rs == cold_run
