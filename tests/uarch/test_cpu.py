"""Tests for the node-level bandwidth-contention model."""

import pytest

from repro.config import memory_preset
from repro.trace import InstructionMix, KernelSignature, ReuseProfile
from repro.uarch import dram_efficiency, resolve_contention, time_kernel


def _bw_hungry_timing(node, m3=0.05, row_hit=0.5):
    sig = KernelSignature(
        name="stream", instr_per_unit=100_000.0,
        mix=InstructionMix(fp=0.3, int_alu=0.15, load=0.3, store=0.1,
                           branch=0.1, other=0.05),
        ilp=3.0, vec_fraction=0.3, trip_count=8, mlp=12.0,
        reuse=ReuseProfile.from_components([(8.0, 1.0 - m3), (5e6, m3)]),
        row_hit_rate=row_hit,
    )
    return time_kernel(sig, node)


def _light_timing(node):
    sig = KernelSignature(
        name="compute", instr_per_unit=100_000.0,
        mix=InstructionMix(fp=0.5, int_alu=0.2, load=0.15, store=0.05,
                           branch=0.1),
        ilp=3.0, vec_fraction=0.5, trip_count=256, mlp=4.0,
        reuse=ReuseProfile.from_components([(8.0, 0.999), (5e6, 0.001)]),
        row_hit_rate=0.9,
    )
    return time_kernel(sig, node)


class TestDramEfficiency:
    def test_monotone_in_row_hit(self):
        effs = [dram_efficiency(r) for r in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert effs == sorted(effs)
        assert 0.3 < effs[0] < effs[-1] < 0.85

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            dram_efficiency(1.5)


class TestResolveContention:
    def test_one_core_unconstrained(self, node64):
        t = _bw_hungry_timing(node64)
        r = resolve_contention(t, 1, node64.memory)
        assert r.mem_stall_multiplier == pytest.approx(1.0, abs=0.05)

    def test_many_cores_saturate(self, node64):
        t = _bw_hungry_timing(node64)
        r = resolve_contention(t, 64, node64.memory)
        assert r.utilization > 0.9
        assert r.mem_stall_multiplier > 1.5

    def test_light_kernel_no_throttle(self, node64):
        t = _light_timing(node64)
        r = resolve_contention(t, 64, node64.memory)
        assert r.mem_stall_multiplier < 1.2

    def test_throughput_never_exceeds_capacity(self, node64):
        t = _bw_hungry_timing(node64)
        for n in (8, 16, 32, 64):
            r = resolve_contention(t, n, node64.memory)
            assert r.achieved_bw_gbs <= r.capacity_gbs * (1 + 1e-6)

    def test_more_channels_relieve_pressure(self, node64):
        t = _bw_hungry_timing(node64)
        r4 = resolve_contention(t, 64, memory_preset("4chDDR4"))
        r8 = resolve_contention(t, 64, memory_preset("8chDDR4"))
        assert r8.timing.cycles < r4.timing.cycles
        assert r8.utilization < r4.utilization * 1.05

    def test_monotone_in_core_count(self, node64):
        t = _bw_hungry_timing(node64)
        prev = 0.0
        for n in (1, 4, 16, 64):
            r = resolve_contention(t, n, node64.memory)
            assert r.timing.cycles >= prev - 1e-9
            prev = r.timing.cycles

    def test_saturated_flag(self, node64):
        t = _bw_hungry_timing(node64)
        assert resolve_contention(t, 64, node64.memory).saturated
        assert not resolve_contention(t, 1, node64.memory).saturated

    def test_zero_traffic_kernel_passthrough(self, node64):
        t = _light_timing(node64)
        t0 = t.with_mem_stall_scaled(1.0)
        r = resolve_contention(t0, 64, node64.memory)
        assert r.timing.cycles == pytest.approx(t0.cycles, rel=0.25)

    def test_rejects_zero_cores(self, node64):
        with pytest.raises(ValueError):
            resolve_contention(_light_timing(node64), 0, node64.memory)
