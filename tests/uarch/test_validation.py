"""Tests for the analytic-vs-exact kernel validation harness."""

import pytest

from repro.apps import APP_NAMES, get_app
from repro.config import cache_preset
from repro.uarch import validate_kernel


@pytest.mark.parametrize("app", APP_NAMES)
def test_every_app_dominant_kernel_validates(app):
    """The sweep's analytic cache path stays anchored to the exact
    simulator for every application's dominant kernel."""
    detailed = get_app(app).detailed_trace()
    name = sorted(detailed.names())[0]
    v = validate_kernel(detailed[name], cache_preset("64M:512K"),
                        l3_share_cores=32, n_accesses=40_000)
    assert v.passed(), (app, v.analytic_miss, v.exact_miss,
                        v.efficiency_error)


class TestValidationMechanics:
    def test_miss_ratios_monotone(self):
        sig = get_app("spmz").detailed_trace()["sp_solve"]
        v = validate_kernel(sig, cache_preset("32M:256K"),
                            l3_share_cores=16, n_accesses=30_000)
        a = v.analytic_miss
        assert a[0] >= a[1] >= a[2]
        e = v.exact_miss
        assert e[0] >= e[1] - 0.02 >= e[2] - 0.04

    def test_efficiency_comparison_present_for_missy_kernels(self):
        sig = get_app("lulesh").detailed_trace()["stress"]
        v = validate_kernel(sig, cache_preset("32M:256K"),
                            l3_share_cores=64, n_accesses=40_000)
        assert v.measured_efficiency is not None
        assert v.analytic_efficiency is not None
        assert v.efficiency_error < 0.25

    def test_node_model_is_conservative(self):
        """The sweep's derated curve sits at or below the controller's
        measured efficiency — it folds in real-system overheads."""
        sig = get_app("lulesh").detailed_trace()["stress"]
        v = validate_kernel(sig, cache_preset("32M:256K"),
                            l3_share_cores=64, n_accesses=40_000)
        assert v.node_model_efficiency <= v.measured_efficiency + 0.05

    def test_rejects_bad_share(self):
        sig = get_app("hydro").detailed_trace()["godunov"]
        with pytest.raises(ValueError):
            validate_kernel(sig, cache_preset("64M:512K"),
                            l3_share_cores=0)
