"""Tests for the SIMD fusion model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch import fusion_factor, vectorize


class TestFusionFactor:
    def test_scalar_width_no_fusion(self):
        assert fusion_factor(1000, 1) == 1.0

    def test_long_loop_approaches_lanes(self):
        assert fusion_factor(4096, 8) == pytest.approx(8.0, rel=0.01)

    def test_short_loop_gated(self):
        # Trip count 4 cannot fuse at 8 lanes (needs >= 16 repeats) but
        # fuses at 2 lanes (needs >= 4): wide units fall back to narrow.
        assert fusion_factor(4, 8) == pytest.approx(2.0)

    def test_trip_below_gate_no_fusion(self):
        assert fusion_factor(3, 8) == 1.0
        assert fusion_factor(1, 2) == 1.0

    def test_monotone_in_width(self):
        for trip in (3, 4, 7, 16, 100, 1000):
            factors = [fusion_factor(trip, l) for l in (1, 2, 4, 8, 16, 32)]
            assert factors == sorted(factors), (trip, factors)

    def test_remainder_iterations_run_scalar(self):
        # trip 10, lanes 4: 2 full groups + 2 scalar = 4 instrs for 10.
        assert fusion_factor(10, 4) == pytest.approx(10 / 4)

    @given(st.floats(min_value=1, max_value=1e5),
           st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_lanes(self, trip, lanes):
        f = fusion_factor(trip, lanes)
        assert 1.0 <= f <= lanes + 1e-9

    def test_rejects_bad_trip(self):
        with pytest.raises(ValueError):
            fusion_factor(0.5, 4)


class TestVectorize:
    def test_64bit_means_scalar(self, simple_kernel):
        v = vectorize(simple_kernel, 64)
        assert v.lanes == 1
        assert v.instr_scale == pytest.approx(1.0)
        assert v.effective_lanes == 1.0

    def test_wider_means_fewer_instructions(self, simple_kernel):
        scales = [vectorize(simple_kernel, w).instr_scale
                  for w in (128, 256, 512, 1024)]
        assert scales == sorted(scales, reverse=True)

    def test_nonvectorizable_work_untouched(self, simple_kernel):
        v = vectorize(simple_kernel, 512)
        m = simple_kernel.mix
        # int/branch/other fraction is preserved 1:1.
        preserved = m.int_alu + m.branch + m.other
        assert v.instr_scale >= preserved

    def test_bytes_conserved(self, simple_kernel):
        # mem instructions shrink by exactly the factor the per-access
        # payload grows.
        v = vectorize(simple_kernel, 512)
        assert v.mem_scale * v.bytes_per_access_scale == pytest.approx(1.0)

    def test_full_vectorizable_kernel_scales_by_lanes(self, simple_reuse):
        from repro.trace import InstructionMix, KernelSignature

        sig = KernelSignature(
            name="pure", instr_per_unit=100.0,
            mix=InstructionMix(fp=0.6, int_alu=0.0, load=0.3, store=0.1,
                               branch=0.0),
            ilp=4.0, vec_fraction=1.0, trip_count=100_000, mlp=4.0,
            reuse=simple_reuse,
        )
        v = vectorize(sig, 512)
        assert v.instr_scale == pytest.approx(1 / 8, rel=0.01)

    def test_rejects_sub_lane_width(self, simple_kernel):
        with pytest.raises(ValueError):
            vectorize(simple_kernel, 32)
