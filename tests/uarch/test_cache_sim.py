"""Tests for the exact set-associative cache simulator, including the
validation of the analytic stack-distance model against it."""

import numpy as np
import pytest

from repro.config import KIB, LINE_BYTES, CacheLevelConfig, cache_preset
from repro.trace import profile_stream
from repro.trace.streams import random_uniform, sequential_sweep
from repro.uarch import CacheHierarchySim, SetAssociativeCache


def small_cache(size_kb=4, assoc=4, latency=1):
    return CacheLevelConfig("T", size_kb * KIB, assoc, latency)


class TestSetAssociativeCache:
    def test_cold_misses(self):
        c = SetAssociativeCache(small_cache())
        for line in range(10):
            assert not c.access(line)
        assert c.stats.misses == 10

    def test_hit_after_fill(self):
        c = SetAssociativeCache(small_cache())
        c.access(5)
        assert c.access(5)
        assert c.stats.hits == 1

    def test_lru_eviction_order(self):
        # Direct test with 2-way, 1-set cache.
        cfg = CacheLevelConfig("T", 2 * LINE_BYTES, 2, 1)
        c = SetAssociativeCache(cfg)
        assert cfg.n_sets == 1
        c.access(0)
        c.access(1)
        c.access(0)        # 0 now MRU
        c.access(2)        # evicts 1 (LRU)
        assert c.access(0)
        assert not c.access(1)

    def test_working_set_fits(self):
        c = SetAssociativeCache(small_cache(size_kb=4))
        lines = list(range(c.config.n_lines // 2)) * 4
        hits = c.access_stream(lines)
        # Only the first pass misses.
        assert hits.sum() == len(lines) - c.config.n_lines // 2

    def test_thrashing(self):
        c = SetAssociativeCache(small_cache(size_kb=4))
        n = c.config.n_lines * 4
        lines = list(range(n)) * 2
        c.access_stream(lines)
        assert c.stats.miss_ratio == 1.0

    def test_reset(self):
        c = SetAssociativeCache(small_cache())
        c.access(1)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.access(1)

    def test_mpki(self):
        c = SetAssociativeCache(small_cache())
        c.access_stream(range(100))
        assert c.stats.mpki(10_000) == pytest.approx(10.0)


class TestHierarchySim:
    def test_inclusive_fill_path(self):
        h = CacheHierarchySim(cache_preset("32M:256K"))
        assert h.access(0) == 4          # cold: misses all levels
        assert h.access(0) == 1          # L1 hit
        # Touch enough lines to evict from L1 but not L2.
        for i in range(1, 1200):
            h.access(i * LINE_BYTES)
        level = h.access(0)
        assert level in (2, 3)           # evicted from L1, still on chip

    def test_l3_sharding_reduces_capacity(self):
        full = CacheHierarchySim(cache_preset("32M:256K"), l3_shards=1)
        shard = CacheHierarchySim(cache_preset("32M:256K"), l3_shards=64)
        assert shard.l3.config.size_bytes <= full.l3.config.size_bytes // 32

    def test_miss_lines_returns_dram_stream(self):
        h = CacheHierarchySim(cache_preset("32M:256K"), l3_shards=512)
        addrs = np.arange(64) * LINE_BYTES
        misses = h.miss_lines(np.tile(addrs, 2))
        assert len(misses) >= 64  # all cold accesses miss

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            CacheHierarchySim(cache_preset("32M:256K"), l3_shards=0)


class TestAnalyticModelValidation:
    """The sweep's stack-distance miss model must track the exact
    simulator on synthetic streams (DESIGN.md ablation #1)."""

    def _compare(self, stream, cfg, tol):
        sim = SetAssociativeCache(cfg)
        sim.access_stream(stream // LINE_BYTES)
        exact = sim.stats.miss_ratio
        profile = profile_stream(stream, max_samples=len(stream))
        model = profile.miss_ratio(cfg.n_lines, associativity=cfg.associativity,
                                   n_sets=cfg.n_sets)
        assert model == pytest.approx(exact, abs=tol), (exact, model)

    def test_sweep_fits(self):
        stream = sequential_sweep(ws_bytes=2 * KIB, n_sweeps=8, elem_bytes=8)
        self._compare(stream, small_cache(size_kb=8), tol=0.05)

    def test_sweep_thrashes(self):
        stream = sequential_sweep(ws_bytes=64 * KIB, n_sweeps=4, elem_bytes=8)
        self._compare(stream, small_cache(size_kb=4), tol=0.07)

    def test_random_small_ws(self):
        stream = random_uniform(ws_bytes=2 * KIB, n_accesses=20_000, seed=3)
        self._compare(stream, small_cache(size_kb=8), tol=0.05)

    def test_random_large_ws(self):
        stream = random_uniform(ws_bytes=128 * KIB, n_accesses=30_000, seed=4)
        self._compare(stream, small_cache(size_kb=16, assoc=8), tol=0.10)

    def test_borderline_working_set(self):
        stream = sequential_sweep(ws_bytes=8 * KIB, n_sweeps=6, elem_bytes=8)
        self._compare(stream, small_cache(size_kb=8, assoc=4), tol=0.15)
