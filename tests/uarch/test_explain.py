"""Tests for the CPI-stack explanation."""

import pytest

from repro.apps import get_app
from repro.config import baseline_node
from repro.uarch import explain_kernel, time_kernel


class TestExplainKernel:
    def test_stack_sums_to_cpi(self, node64, simple_kernel):
        stack = explain_kernel(simple_kernel, node64)
        timing = time_kernel(simple_kernel, node64)
        assert stack.cpi == pytest.approx(
            timing.cycles / timing.instructions)
        assert stack.ipc == pytest.approx(timing.ipc)

    def test_component_names(self, node64, simple_kernel):
        stack = explain_kernel(simple_kernel, node64)
        names = [n for n, _ in stack.components]
        assert names == ["base", "L2 stall", "L3 stall", "DRAM stall"]

    def test_bottleneck_is_max_component(self, node64, simple_kernel):
        stack = explain_kernel(simple_kernel, node64)
        biggest = max(stack.components, key=lambda c: c[1])[0]
        assert stack.bottleneck == biggest

    def test_spmz_is_dependency_bound(self, node64):
        sig = get_app("spmz").detailed_trace()["sp_solve"]
        stack = explain_kernel(sig, node64)
        assert stack.base_bound == "dependencies (ILP)"

    def test_lulesh_dram_heavy_when_sharing_l3(self, node64):
        sig = get_app("lulesh").detailed_trace()["stress"]
        alone = explain_kernel(sig, node64, l3_share_cores=1)
        crowded = explain_kernel(sig, node64, l3_share_cores=64)
        dram = dict(crowded.components)["DRAM stall"]
        assert dram > dict(alone.components)["DRAM stall"]

    def test_lowend_shifts_base_bound_to_issue(self):
        sig = get_app("hydro").detailed_trace()["godunov"]
        node = baseline_node(64).with_(core="lowend")
        stack = explain_kernel(sig, node)
        assert stack.base_bound == "issue width"

    def test_render(self, node64, simple_kernel):
        text = explain_kernel(simple_kernel, node64).render()
        assert "CPI stack" in text
        assert "DRAM stall" in text
        assert "|" in text  # bars present
