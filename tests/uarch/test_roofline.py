"""Tests for the roofline analysis."""

import pytest

from repro.apps import get_app
from repro.config import baseline_node
from repro.uarch import render_roofline, roofline_point


class TestRooflinePoint:
    def test_lulesh_pinned_to_memory_roof(self, node64):
        sig = get_app("lulesh").detailed_trace()["stress"]
        p = roofline_point(sig, node64)
        assert p.memory_bound
        assert p.roof_fraction == pytest.approx(1.0, abs=0.15)

    def test_hydro_compute_bound(self, node64):
        sig = get_app("hydro").detailed_trace()["godunov"]
        p = roofline_point(sig, node64)
        assert not p.memory_bound
        assert p.operational_intensity > p.ridge_intensity

    def test_achieved_never_exceeds_roof_materially(self, node64):
        for app in ("hydro", "spmz", "btmz", "spec3d", "lulesh"):
            detailed = get_app(app).detailed_trace()
            for k in detailed.names():
                p = roofline_point(detailed[k], node64)
                assert p.achieved_gflops <= p.roof_gflops * 1.1, (app, k)

    def test_wider_simd_raises_compute_roof(self, node64):
        sig = get_app("spmz").detailed_trace()["sp_solve"]
        narrow = roofline_point(sig, node64)
        wide = roofline_point(sig, node64.with_(vector_bits=512))
        assert wide.peak_gflops > 2 * narrow.peak_gflops

    def test_more_channels_raise_memory_roof(self, node64):
        sig = get_app("lulesh").detailed_trace()["stress"]
        few = roofline_point(sig, node64)
        many = roofline_point(sig, node64.with_(memory="8chDDR4"))
        assert many.bandwidth_gbs == pytest.approx(2 * few.bandwidth_gbs)
        assert many.achieved_gflops > few.achieved_gflops

    def test_share_splits_bandwidth(self, node64):
        sig = get_app("lulesh").detailed_trace()["stress"]
        alone = roofline_point(sig, node64, l3_share_cores=1)
        full = roofline_point(sig, node64, l3_share_cores=64)
        assert alone.bandwidth_gbs == pytest.approx(
            64 * full.bandwidth_gbs, rel=0.01)


class TestRender:
    def test_renders_kernels_and_roof(self, node64):
        detailed = get_app("lulesh").detailed_trace()
        pts = [roofline_point(detailed[k], node64)
               for k in detailed.names()]
        art = render_roofline(pts, width=48, height=10)
        assert "Roofline" in art
        assert "/" in art and "-" in art      # the two roof segments
        assert "S" in art                      # stress marker
        assert "memory-bound" in art

    def test_rejects_mixed_nodes(self, node64):
        sig = get_app("hydro").detailed_trace()["godunov"]
        a = roofline_point(sig, node64)
        b = roofline_point(sig, node64.with_(vector_bits=512))
        with pytest.raises(ValueError, match="share one node"):
            render_roofline([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_roofline([])
