"""Tests for the interval-analysis core timing model."""

import pytest

from repro.config import baseline_node
from repro.trace import InstructionMix, KernelSignature, ReuseProfile
from repro.uarch import time_kernel


def _sig(ilp=3.0, mlp=6.0, vec=0.7, trip=256, mem_components=None,
         row_hit=0.6, mix=None):
    return KernelSignature(
        name="k", instr_per_unit=100_000.0,
        mix=mix or InstructionMix(fp=0.30, int_alu=0.20, load=0.25,
                                  store=0.10, branch=0.10, other=0.05),
        ilp=ilp, vec_fraction=vec, trip_count=trip, mlp=mlp,
        reuse=ReuseProfile.from_components(
            mem_components or [(8.0, 0.95), (2000.0, 0.04), (1e6, 0.01)]),
        row_hit_rate=row_hit,
    )


class TestBaseComponent:
    def test_issue_width_bounds_ipc(self, node64):
        sig = _sig(ilp=100.0, vec=0.0,
                   mem_components=[(2.0, 1.0)])  # no stalls, no dep limit
        t = time_kernel(sig, node64.with_(core="lowend"))
        assert t.ipc <= 2.0 + 1e-6

    def test_dependency_bounds_ipc(self, node64):
        sig = _sig(ilp=1.5, vec=0.0, mem_components=[(2.0, 1.0)])
        t = time_kernel(sig, node64.with_(core="aggressive"))
        assert t.ipc <= 1.5 + 1e-6

    def test_wider_core_never_slower(self, node64):
        sig = _sig()
        cycles = [time_kernel(sig, node64.with_(core=c)).cycles
                  for c in ("lowend", "medium", "high", "aggressive")]
        assert cycles == sorted(cycles, reverse=True)


class TestVectorInteraction:
    def test_vectorization_reduces_cycles(self, node64):
        sig = _sig(vec=0.9, trip=1024)
        t128 = time_kernel(sig, node64.with_(vector_bits=128))
        t512 = time_kernel(sig, node64.with_(vector_bits=512))
        assert t512.cycles < t128.cycles

    def test_short_trip_no_wide_benefit(self, node64):
        sig = _sig(vec=0.9, trip=4)
        t128 = time_kernel(sig, node64.with_(vector_bits=128))
        t512 = time_kernel(sig, node64.with_(vector_bits=512))
        assert t512.cycles == pytest.approx(t128.cycles, rel=1e-6)

    def test_dram_bytes_conserved_under_fusion(self, node64):
        sig = _sig(vec=0.95, trip=2048)
        t128 = time_kernel(sig, node64.with_(vector_bits=128))
        t512 = time_kernel(sig, node64.with_(vector_bits=512))
        assert t512.dram_bytes == pytest.approx(t128.dram_bytes, rel=1e-9)

    def test_scalar_flops_invariant(self, node64):
        sig = _sig(vec=0.9)
        for w in (64, 128, 512):
            t = time_kernel(sig, node64.with_(vector_bits=w))
            assert t.scalar_flops == pytest.approx(100_000 * 0.30)


class TestMemoryBehaviour:
    def test_memory_latency_scales_with_frequency(self):
        # DRAM stall *cycles* grow with frequency (wall-clock latency fixed).
        sig = _sig(mem_components=[(8, 0.9), (1e6, 0.1)], mlp=1.0,
                   row_hit=0.0)
        slow = time_kernel(sig, baseline_node(1).with_(frequency_ghz=1.5))
        fast = time_kernel(sig, baseline_node(1).with_(frequency_ghz=3.0))
        assert fast.mem_stall_cycles > slow.mem_stall_cycles

    def test_mlp_reduces_dram_stall(self, node64):
        hi = _sig(mlp=12.0, row_hit=1.0,
                  mem_components=[(8, 0.9), (1e6, 0.1)])
        lo = _sig(mlp=1.0, row_hit=0.0,
                  mem_components=[(8, 0.9), (1e6, 0.1)])
        t_hi = time_kernel(hi, node64)
        t_lo = time_kernel(lo, node64)
        assert t_hi.mem_stall_cycles < t_lo.mem_stall_cycles

    def test_big_rob_hides_latency(self, node64):
        sig = _sig(mlp=2.0, row_hit=0.1,
                   mem_components=[(8, 0.9), (1e6, 0.1)])
        small = time_kernel(sig, node64.with_(core="lowend"))
        big = time_kernel(sig, node64.with_(core="aggressive"))
        assert big.mem_stall_cycles < small.mem_stall_cycles

    def test_l3_share_increases_dram_traffic(self, node64):
        sig = _sig(mem_components=[(8, 0.5), (30_000, 0.5)])
        alone = time_kernel(sig, node64, l3_share_cores=1)
        crowded = time_kernel(sig, node64, l3_share_cores=64)
        assert crowded.dram_accesses > alone.dram_accesses

    def test_mem_latency_override(self, node64):
        sig = _sig(mem_components=[(8, 0.9), (1e6, 0.1)], mlp=1.0,
                   row_hit=0.0)
        near = time_kernel(sig, node64, mem_latency_ns=30.0)
        far = time_kernel(sig, node64, mem_latency_ns=300.0)
        assert far.mem_stall_cycles > near.mem_stall_cycles


class TestAccounting:
    def test_cycle_breakdown_sums(self, node64, simple_kernel):
        t = time_kernel(simple_kernel, node64)
        assert t.cycles == pytest.approx(
            t.base_cycles + t.l2_stall_cycles + t.l3_stall_cycles
            + t.mem_stall_cycles)

    def test_duration_consistent_with_frequency(self, simple_kernel):
        t = time_kernel(simple_kernel, baseline_node(1))
        assert t.duration_ns == pytest.approx(t.cycles / 2.0)

    def test_mpki_ordering(self, node64, simple_kernel):
        l1, l2, l3 = time_kernel(simple_kernel, node64).mpki()
        assert l1 >= l2 >= l3 >= 0

    def test_mem_stall_scaling_helper(self, node64, simple_kernel):
        t = time_kernel(simple_kernel, node64)
        t2 = t.with_mem_stall_scaled(3.0)
        assert t2.mem_stall_cycles == pytest.approx(3 * t.mem_stall_cycles)
        assert t2.base_cycles == t.base_cycles
        with pytest.raises(ValueError):
            t.with_mem_stall_scaled(0.5)
