"""Tests for the analytic cache-hierarchy model."""

import pytest

from repro.config import cache_preset
from repro.trace import InstructionMix, KernelSignature, ReuseProfile
from repro.uarch import hierarchy_miss_profile


def _sig(components, cold=0.0):
    return KernelSignature(
        name="k", instr_per_unit=1000.0,
        mix=InstructionMix(fp=0.3, int_alu=0.2, load=0.25, store=0.1,
                           branch=0.1, other=0.05),
        ilp=2.0, vec_fraction=0.5, trip_count=64, mlp=4.0,
        reuse=ReuseProfile.from_components(components, cold_fraction=cold),
    )


class TestMissProfile:
    def test_monotone_levels(self):
        sig = _sig([(100, 0.5), (5000, 0.3), (1e6, 0.2)])
        mp = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        assert mp.miss_l1 >= mp.miss_l2 >= mp.miss_l3

    def test_l1_resident_kernel(self):
        sig = _sig([(50, 1.0)])
        mp = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        assert mp.miss_l1 < 0.05

    def test_l2_resident_kernel(self):
        # Distance 2000 lines = 128 KB: misses 32 KB L1, fits 512 KB L2.
        sig = _sig([(2000, 1.0)])
        mp = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        assert mp.miss_l1 > 0.9
        assert mp.miss_l2 < 0.1

    def test_dram_kernel(self):
        sig = _sig([(5e6, 1.0)])
        mp = hierarchy_miss_profile(sig, cache_preset("96M:1M"))
        assert mp.miss_l3 > 0.9

    def test_cold_fraction_reaches_dram(self):
        sig = _sig([(10, 0.9)], cold=0.1)
        mp = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        assert mp.miss_l3 == pytest.approx(0.1, abs=0.02)

    def test_l3_sharing_hurts(self):
        # 1.5 MB working set: fits a private-ish L3 slice but not 1/64th.
        sig = _sig([(24_000, 1.0)])
        h = cache_preset("64M:512K")
        alone = hierarchy_miss_profile(sig, h, l3_share_cores=1)
        crowded = hierarchy_miss_profile(sig, h, l3_share_cores=64)
        assert alone.miss_l3 < 0.1
        assert crowded.miss_l3 > 0.8

    def test_bigger_l2_reduces_misses(self):
        # 350 KB slab: misses a 256 KB L2, fits 512 KB (HYDRO's knee).
        sig = _sig([(5500, 1.0)])
        small = hierarchy_miss_profile(sig, cache_preset("32M:256K"))
        big = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        assert small.miss_l2 > 0.6
        assert big.miss_l2 < 0.25

    def test_mpki_arithmetic(self):
        sig = _sig([(2000, 1.0)])
        mp = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        l1, l2, l3 = mp.mpki(mem_per_instr=0.35)
        assert l1 == pytest.approx(1000 * 0.35 * mp.miss_l1)
        assert l1 >= l2 >= l3

    def test_granularity_scale(self):
        sig = _sig([(400, 1.0)])
        base = hierarchy_miss_profile(sig, cache_preset("64M:512K"))
        scaled = hierarchy_miss_profile(sig, cache_preset("64M:512K"),
                                        access_granularity_scale=4.0)
        assert scaled.miss_l1 >= base.miss_l1

    def test_rejects_bad_args(self):
        sig = _sig([(10, 1.0)])
        with pytest.raises(ValueError):
            hierarchy_miss_profile(sig, cache_preset("64M:512K"),
                                   l3_share_cores=0)
