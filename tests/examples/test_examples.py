"""Smoke tests keeping the example scripts runnable.

Each example is executed in-process (importing its main()) with the
cheapest possible inputs; the heavyweight sweeps are covered by the
benchmark harness instead.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "8-channel speedup" in out

    def test_custom_application(self, capsys):
        run_example("custom_application.py")
        out = capsys.readouterr().out
        assert "Best single upgrade" in out

    def test_memory_system_deep_dive(self, capsys):
        run_example("memory_system_deep_dive.py")
        out = capsys.readouterr().out
        assert "DRAM power" in out
        assert "HBM2" in out

    def test_scaling_study_small(self, capsys):
        run_example("scaling_study.py", argv=["8"])
        out = capsys.readouterr().out
        assert "Fig. 2a" in out
        assert "Fig. 4" in out
