"""Golden-digest pin of the full 864-configuration LULESH sweep.

One SHA-256 over the canonically serialized ResultSet per mode.  Any
numerical drift anywhere in the pipeline — core model, cache
hierarchy, memory model, scheduler, replay engine, batched evaluator —
changes the digest.  An intentional model change must update
``golden_digests.json`` in the same commit and say why.

Fast mode covers the analytic path; replay mode additionally covers
the trace-driven network replay (256 ranks/config, the paper's
machine-scale point).  Both run the default (batched) engine — the
per-record bit-identity of batched vs scalar is pinned separately by
the engine test suites, so a digest break here means the *model*
moved, not just one engine.
"""

import hashlib
import json
from pathlib import Path

from repro.config import full_design_space
from repro.core import run_sweep

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_digests.json").read_text())


def canonical_digest(rs) -> str:
    blob = json.dumps({"records": list(rs)}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def test_fast_mode_digest():
    rs = run_sweep(["lulesh"], full_design_space(), processes=1)
    assert len(rs) == 864
    assert canonical_digest(rs) == GOLDEN["lulesh_fast_864"], (
        "fast-mode model output drifted; if intentional, regenerate "
        "tests/integration/golden_digests.json")


def test_replay_mode_digest():
    rs = run_sweep(["lulesh"], full_design_space(), processes=1,
                   mode="replay", n_ranks=256)
    assert len(rs) == 864
    assert canonical_digest(rs) == GOLDEN["lulesh_replay_864_r256"], (
        "replay-mode model output drifted; if intentional, regenerate "
        "tests/integration/golden_digests.json")
