"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_node, memory_preset
from repro.network import NetworkConfig, replay
from repro.trace import (
    BurstTrace,
    ComputePhase,
    InstructionMix,
    KernelSignature,
    MpiCall,
    RankTrace,
    ReuseProfile,
    TaskRecord,
    detailed_from_dict,
    detailed_to_dict,
)
from repro.trace.detailed import DetailedTrace
from repro.uarch import resolve_contention, time_kernel


def _sig(ilp, vec, trip, mlp, components, cold, row_hit):
    return KernelSignature(
        name="k", instr_per_unit=50_000.0,
        mix=InstructionMix(fp=0.3, int_alu=0.2, load=0.25, store=0.1,
                           branch=0.1, other=0.05),
        ilp=ilp, vec_fraction=vec, trip_count=trip, mlp=mlp,
        reuse=ReuseProfile.from_components(components, cold_fraction=cold),
        row_hit_rate=row_hit,
    )


signature_strategy = st.builds(
    _sig,
    ilp=st.floats(min_value=1.0, max_value=6.0),
    vec=st.floats(min_value=0.0, max_value=1.0),
    trip=st.floats(min_value=1.0, max_value=4096.0),
    mlp=st.floats(min_value=1.0, max_value=16.0),
    components=st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=1e6),
                  st.floats(min_value=0.01, max_value=1.0)),
        min_size=1, max_size=4),
    cold=st.floats(min_value=0.0, max_value=0.2),
    row_hit=st.floats(min_value=0.0, max_value=1.0),
)


class TestTimingProperties:
    @given(sig=signature_strategy)
    @settings(max_examples=50, deadline=None)
    def test_cycles_positive_and_finite(self, sig):
        t = time_kernel(sig, baseline_node(64))
        assert np.isfinite(t.cycles) and t.cycles > 0
        assert t.ipc > 0

    @given(sig=signature_strategy)
    @settings(max_examples=50, deadline=None)
    def test_wider_vectors_never_slower(self, sig):
        node = baseline_node(64)
        prev = None
        for width in (128, 256, 512, 1024):
            c = time_kernel(sig, node.with_(vector_bits=width)).cycles
            if prev is not None:
                assert c <= prev * (1 + 1e-9)
            prev = c

    @given(sig=signature_strategy)
    @settings(max_examples=50, deadline=None)
    def test_bigger_cores_never_materially_slower(self, sig):
        # Interval analysis has a genuine marginal inversion: a wider
        # core refills its window faster (hide = ROB/dispatch-rate), so
        # its *visible* stall per miss can be a touch larger.  The total
        # must still never degrade by more than a whisker.
        node = baseline_node(64)
        cyc = [time_kernel(sig, node.with_(core=c)).cycles
               for c in ("lowend", "medium", "high", "aggressive")]
        assert all(b <= a * 1.02 for a, b in zip(cyc, cyc[1:]))

    @given(sig=signature_strategy,
           n_busy=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_contention_never_speeds_up(self, sig, n_busy):
        node = baseline_node(64)
        t = time_kernel(sig, node)
        r = resolve_contention(t, n_busy, node.memory)
        assert r.timing.cycles >= t.cycles - 1e-9
        assert r.achieved_bw_gbs <= r.capacity_gbs + 1e-6

    @given(sig=signature_strategy)
    @settings(max_examples=30, deadline=None)
    def test_serialize_round_trip_preserves_timing(self, sig):
        trace = DetailedTrace(app="x", kernels={"k": sig})
        again = detailed_from_dict(detailed_to_dict(trace))
        node = baseline_node(64)
        assert time_kernel(again["k"], node).cycles == pytest.approx(
            time_kernel(sig, node).cycles, rel=1e-9)


class TestReplayProperties:
    @given(
        durations=st.lists(st.floats(min_value=1.0, max_value=1e6),
                           min_size=1, max_size=5),
        n_ranks=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_compute_time_conserved(self, durations, n_ranks):
        """Replay charges exactly the durations the callback supplies."""
        phases = tuple(
            ComputePhase(phase_id=i, tasks=(
                TaskRecord(kernel="k", duration_ns=1.0),))
            for i in range(len(durations))
        )
        ranks = tuple(
            RankTrace(rank=r, events=phases) for r in range(n_ranks))
        trace = BurstTrace(app="t", ranks=ranks)
        net = NetworkConfig(latency_us=0.001, bandwidth_gbs=100.0,
                            cpu_overhead_us=0.001)
        res = replay(trace, net,
                     lambda rank, ph: durations[ph.phase_id])
        for r in range(n_ranks):
            assert res.compute_ns[r] == pytest.approx(sum(durations))

    @given(n_ranks=st.integers(min_value=2, max_value=8),
           slow_rank=st.integers(min_value=0, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_barrier_bounded_by_slowest(self, n_ranks, slow_rank):
        slow_rank %= n_ranks
        phase = ComputePhase(phase_id=0, tasks=(
            TaskRecord(kernel="k", duration_ns=1.0),))
        ranks = tuple(
            RankTrace(rank=r, events=(phase, MpiCall(kind="barrier")))
            for r in range(n_ranks))
        trace = BurstTrace(app="t", ranks=ranks)
        net = NetworkConfig(latency_us=0.001, bandwidth_gbs=100.0,
                            cpu_overhead_us=0.001)
        res = replay(trace, net,
                     lambda r, ph: 1000.0 if r == slow_rank else 10.0)
        # Everyone leaves the barrier after the slowest rank enters.
        assert res.total_ns >= 1000.0
        assert res.total_ns < 1000.0 + 10_000.0  # barrier cost bounded
