"""Fast analytic integration vs full Dimemas replay, across apps.

The sweep uses the 'fast' mode (per-phase makespans + analytic comm);
this must track the full replay for every application, or the 864-point
campaign would not be trustworthy.
"""

import pytest

from repro.apps import APP_NAMES, get_app
from repro.config import baseline_node
from repro.core import Musa


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("cores", [32, 64])
def test_fast_tracks_replay(app, cores):
    musa = Musa(get_app(app))
    node = baseline_node(cores)
    fast = musa.simulate_node(node, n_ranks=16, n_iterations=2,
                              mode="fast", include_comm=True)
    full = musa.simulate_node(node, n_ranks=16, n_iterations=2,
                              mode="replay")
    assert fast.time_ns == pytest.approx(full.time_ns, rel=0.35), (
        app, cores, fast.time_ns, full.time_ns)


@pytest.mark.parametrize("app", ["hydro", "lulesh"])
def test_fast_tracks_replay_across_configs(app):
    musa = Musa(get_app(app))
    for node in (baseline_node(64).with_(vector_bits=512),
                 baseline_node(64).with_(core="lowend"),
                 baseline_node(64).with_(memory="8chDDR4")):
        fast = musa.simulate_node(node, n_ranks=8, n_iterations=1,
                                  mode="fast", include_comm=True)
        full = musa.simulate_node(node, n_ranks=8, n_iterations=1,
                                  mode="replay")
        assert fast.time_ns == pytest.approx(full.time_ns, rel=0.35), (
            app, node.label)
