"""Integration tests pinning the paper's evaluation claims (Sec. V).

These run a reduced-but-representative design-space sweep (the full
2 GHz plane plus a frequency column) and assert the *shapes* the paper
reports: who wins each axis, by roughly what factor, and where the
crossovers fall.  Tolerances are wide — the substrate is an analytic
simulator — but every claim's direction and rank order is enforced.
"""

import pytest

from repro.apps import APP_NAMES
from repro.config import DesignSpace, unconventional_configs
from repro.core import Musa, normalize_axis, run_sweep
from repro.apps import get_app


@pytest.fixture(scope="module")
def plane():
    """Full 2 GHz / {32,64}-core plane: 4 cores x 3 caches x 2 memories
    x 3 vectors x 2 core-counts = 144 configs per application."""
    space = DesignSpace(frequencies=(2.0,), core_counts=(32, 64))
    return run_sweep(APP_NAMES, space, processes=1)


@pytest.fixture(scope="module")
def freq_column():
    """Frequency axis at the baseline corner (per-app, 8 configs)."""
    space = DesignSpace(
        core_labels=("medium",), cache_labels=("64M:512K",),
        vector_widths=(128,), core_counts=(64,),
    )
    return run_sweep(APP_NAMES, space, processes=1)


def bar(bars, app, cores, value):
    hits = [b for b in bars if b.app == app and b.cores == cores
            and b.value == value]
    assert len(hits) == 1, f"missing bar {app}/{cores}/{value}"
    return hits[0].mean


class TestFig5Vector:
    """512-bit FPUs: 20% (HYDRO) to 75% (SP-MZ) speedup, LULESH flat;
    Core+L1 power up ~60%; 256-bit saves energy for most apps."""

    def test_speedup_range(self, plane):
        bars = normalize_axis(plane, "vector", 128, "time_ns")
        s = {a: bar(bars, a, 64, 512) for a in APP_NAMES}
        assert 1.05 < s["hydro"] < 1.35
        assert 1.5 < s["spmz"] < 2.2
        assert s["lulesh"] == pytest.approx(1.0, abs=0.05)
        non_lulesh = [s[a] for a in APP_NAMES if a != "lulesh"]
        avg = sum(non_lulesh) / len(non_lulesh)
        assert 1.25 < avg < 1.65  # paper: 40% average

    def test_spmz_is_the_biggest_winner(self, plane):
        bars = normalize_axis(plane, "vector", 128, "time_ns")
        s = {a: bar(bars, a, 64, 512) for a in APP_NAMES}
        assert max(s, key=s.get) == "spmz"

    def test_core_power_increases(self, plane):
        bars = normalize_axis(plane, "vector", 128, "power_core_l1_w")
        p = [bar(bars, a, 64, 512) for a in APP_NAMES]
        avg = sum(p) / len(p)
        assert 1.25 < avg < 1.9  # paper: +60% average
        assert all(x > 1.1 for x in p)

    def test_32_and_64_core_panels_similar(self, plane):
        bars = normalize_axis(plane, "vector", 128, "time_ns")
        for a in APP_NAMES:
            assert bar(bars, a, 32, 512) == pytest.approx(
                bar(bars, a, 64, 512), rel=0.15)


class TestFig6Cache:
    """96M:1M caches: HYDRO ~21%, BTMZ ~9%, Specfem3D flat; ~5-20% of
    node power in L2+L3 depending on capacity."""

    def test_hydro_gains_most_of_the_grid_apps(self, plane):
        bars = normalize_axis(plane, "cache", "32M:256K", "time_ns")
        s = {a: bar(bars, a, 64, "96M:1M") for a in APP_NAMES}
        assert 1.10 < s["hydro"] < 1.40
        assert 1.03 < s["btmz"] < 1.25

    def test_spec3d_insensitive(self, plane):
        bars = normalize_axis(plane, "cache", "32M:256K", "time_ns")
        assert bar(bars, "spec3d", 64, "96M:1M") == pytest.approx(1.0,
                                                                  abs=0.08)

    def test_power_ladder(self, plane):
        """L2+L3 share roughly doubles per capacity step (5/10/20%)."""
        for app in ("btmz", "spmz"):
            sub = plane.filter(app=app, cores=64)
            shares = {}
            for label in ("32M:256K", "64M:512K", "96M:1M"):
                rows = sub.filter(cache=label)
                shares[label] = (rows.values("power_l2_l3_w")
                                 / rows.values("power_total_w")).mean()
            assert shares["32M:256K"] < shares["64M:512K"] < shares["96M:1M"]
            assert shares["96M:1M"] > 2.0 * shares["32M:256K"]

    def test_middle_point_best_energy_tradeoff(self, plane):
        """64M:512K captures most of the energy benefit (Sec. V-B2)."""
        bars = normalize_axis(plane, "cache", "32M:256K", "energy_j")
        for app in ("hydro", "btmz"):
            e64 = bar(bars, app, 64, "64M:512K")
            assert e64 < 1.02  # not worse than the small config


class TestFig7OoO:
    """Low-end ~35% slower (Specfem3D ~60%); medium/high within ~5-15%
    of aggressive at 20% less power."""

    def test_lowend_slowdowns(self, plane):
        bars = normalize_axis(plane, "core", "aggressive", "time_ns")
        s = {a: bar(bars, a, 64, "lowend") for a in APP_NAMES}
        for a in APP_NAMES:
            assert 0.35 < s[a] < 0.85
        assert min(s, key=s.get) == "spec3d"
        assert s["spec3d"] < 0.60

    def test_intermediate_cores_close_to_aggressive(self, plane):
        bars = normalize_axis(plane, "core", "aggressive", "time_ns")
        for a in APP_NAMES:
            assert bar(bars, a, 64, "high") > 0.9
            assert bar(bars, a, 64, "medium") > 0.82

    def test_lowend_power_roughly_half(self, plane):
        bars = normalize_axis(plane, "core", "aggressive", "power_core_l1_w")
        p = [bar(bars, a, 64, "lowend") for a in APP_NAMES]
        assert 0.35 < sum(p) / len(p) < 0.75

    def test_medium_saves_power(self, plane):
        bars = normalize_axis(plane, "core", "aggressive", "power_core_l1_w")
        for a in APP_NAMES:
            assert bar(bars, a, 64, "medium") < 0.95

    def test_lulesh_energy_savings_with_medium(self, plane):
        """Memory-bound codes get near-free energy savings (Fig. 7c):
        the medium core saves energy while costing LULESH the least
        performance of the compute-sensitive apps."""
        bars = normalize_axis(plane, "core", "aggressive", "energy_j")
        assert bar(bars, "lulesh", 64, "medium") < 0.97
        tbars = normalize_axis(plane, "core", "aggressive", "time_ns")
        assert bar(tbars, "lulesh", 64, "medium") > 0.85


class TestFig8MemoryChannels:
    """Only LULESH profits from 8 channels (up to ~60% at 64 cores);
    DRAM power roughly doubles but node power grows only 10-20%."""

    def test_only_lulesh_speeds_up(self, plane):
        bars = normalize_axis(plane, "memory", "4chDDR4", "time_ns")
        s = {a: bar(bars, a, 64, "8chDDR4") for a in APP_NAMES}
        assert s["lulesh"] > 1.25
        for a in ("hydro", "spmz", "btmz", "spec3d"):
            assert s[a] < 1.10

    def test_lulesh_gain_larger_at_64_cores(self, plane):
        bars = normalize_axis(plane, "memory", "4chDDR4", "time_ns")
        assert bar(bars, "lulesh", 64, "8chDDR4") >= \
            bar(bars, "lulesh", 32, "8chDDR4") - 0.05

    def test_dram_power_roughly_doubles(self, plane):
        bars = normalize_axis(plane, "memory", "4chDDR4", "power_memory_w")
        p = [bar(bars, a, 64, "8chDDR4") for a in APP_NAMES]
        assert all(1.5 < x < 2.3 for x in p)

    def test_node_power_increase_modest(self, plane):
        bars = normalize_axis(plane, "memory", "4chDDR4", "power_total_w")
        p = [bar(bars, a, 64, "8chDDR4") for a in APP_NAMES]
        assert all(x < 1.25 for x in p)

    def test_lulesh_energy_savings(self, plane):
        bars = normalize_axis(plane, "memory", "4chDDR4", "energy_j")
        assert bar(bars, "lulesh", 64, "8chDDR4") < 0.85


class TestFig9Frequency:
    """All apps except HYDRO scale near-linearly 1.5->3.0 GHz; HYDRO
    plateaus past 2.5 GHz; power grows super-linearly with frequency."""

    def test_compute_apps_scale(self, freq_column):
        bars = normalize_axis(freq_column, "frequency", 1.5, "time_ns")
        for a in ("spmz", "btmz"):
            assert bar(bars, a, 64, 3.0) > 1.6

    def test_hydro_scheduling_plateau(self, freq_column):
        bars = normalize_axis(freq_column, "frequency", 1.5, "time_ns")
        s25 = bar(bars, "hydro", 64, 2.5)
        s30 = bar(bars, "hydro", 64, 3.0)
        # Gains flatten: 2.5 -> 3.0 adds almost nothing.
        assert s30 - s25 < 0.10
        assert s25 > 1.25  # but scaling below 2.5 GHz was real

    def test_power_grows_superlinearly(self, freq_column):
        bars = normalize_axis(freq_column, "frequency", 1.5, "power_total_w")
        for a in ("hydro", "spmz", "btmz"):
            p = bar(bars, a, 64, 3.0)
            assert p > 1.7  # paper: ~2.5x

    def test_perf_per_watt_worsens_at_3ghz(self, freq_column):
        tbars = normalize_axis(freq_column, "frequency", 1.5, "time_ns")
        pbars = normalize_axis(freq_column, "frequency", 1.5, "power_total_w")
        for a in ("spmz", "btmz"):
            assert bar(pbars, a, 64, 3.0) > bar(tbars, a, 64, 3.0)


class TestTable2Fig11Unconventional:
    """Application-specific configurations (Sec. V-D)."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for app, cfgs in unconventional_configs().items():
            musa = Musa(get_app(app))
            out[app] = {label: musa.simulate_node(node)
                        for label, node in cfgs.items()}
        return out

    def test_spmz_vector_configs_monotone(self, results):
        base = results["spmz"]["Best-DSE"]
        vp = results["spmz"]["Vector+"]
        vpp = results["spmz"]["Vector++"]
        assert base.time_ns >= vp.time_ns >= vpp.time_ns
        assert base.time_ns / vpp.time_ns > 1.05

    def test_spmz_vectorpp_power_explodes(self, results):
        base = results["spmz"]["Best-DSE"]
        vpp = results["spmz"]["Vector++"]
        ratio = vpp.power.total_w / base.power.total_w
        assert ratio > 1.4  # paper: 3.14x; direction + magnitude order

    def test_spmz_vectorpp_hurts_energy(self, results):
        base = results["spmz"]["Best-DSE"]
        vpp = results["spmz"]["Vector++"]
        assert vpp.energy_j / base.energy_j > 1.2  # paper: 2.5x

    def test_lulesh_memplus_saves_energy(self, results):
        base = results["lulesh"]["Best-DSE"]
        memp = results["lulesh"]["MEM+"]
        assert memp.energy_j / base.energy_j < 0.90  # paper: 0.53
        # ... at near-parity performance (paper: +7%).
        assert base.time_ns / memp.time_ns == pytest.approx(1.0, abs=0.12)

    def test_lulesh_mempp_fastest_memory_config(self, results):
        memp = results["lulesh"]["MEM+"]
        mempp = results["lulesh"]["MEM++"]
        assert mempp.time_ns < memp.time_ns
        assert mempp.energy_j is None  # no HBM energy data (paper)


class TestScalingStudy:
    """Fig. 2: parallel-efficiency claims."""

    def test_fig2a_only_hydro_above_75pct_at_64(self):
        from repro.analysis import compute_region_scaling

        effs = {}
        for name in APP_NAMES:
            effs[name] = compute_region_scaling(
                Musa(get_app(name))).efficiency(64)
        assert effs["hydro"] > 0.75
        for name in APP_NAMES:
            if name != "hydro":
                assert effs[name] < 0.75

    def test_fig2a_average_efficiencies(self):
        from repro.analysis import compute_region_scaling

        curves = [compute_region_scaling(Musa(get_app(n)))
                  for n in APP_NAMES]
        avg32 = sum(c.efficiency(32) for c in curves) / 5
        avg64 = sum(c.efficiency(64) for c in curves) / 5
        assert avg32 == pytest.approx(0.70, abs=0.12)
        assert avg64 == pytest.approx(0.50, abs=0.10)

    def test_fig2b_mpi_drops_efficiency_below_fig2a(self):
        from repro.analysis import compute_region_scaling, full_app_scaling

        for name in ("spmz", "lulesh"):
            musa = Musa(get_app(name))
            region = compute_region_scaling(musa)
            full = full_app_scaling(musa, n_ranks=32, n_iterations=1)
            assert full.efficiency(64) < region.efficiency(64)
