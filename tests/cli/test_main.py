"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.config import DesignSpace
from repro.core import ResultSet, run_sweep


@pytest.fixture(scope="module")
def plane_results(tmp_path_factory):
    """A small sweep persisted the way `repro sweep` writes it."""
    path = tmp_path_factory.mktemp("cli") / "results.json"
    space = DesignSpace(core_labels=("medium",), cache_labels=("64M:512K",),
                        frequencies=(2.0,), vector_widths=(128, 512),
                        core_counts=(64,))
    run_sweep(["spmz"], space, processes=1).save(path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "miniFE"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "lulesh"])
        assert args.core == "medium"
        assert args.cores == 64


class TestCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "hydro", "--cores", "32"]) == 0
        out = capsys.readouterr().out
        assert "L1 MPKI" in out
        assert "node power" in out

    def test_simulate_with_overrides(self, capsys):
        rc = main(["simulate", "spmz", "--vector", "512",
                   "--core", "aggressive", "--memory", "8chDDR4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aggressive" in out
        assert "512b" in out

    def test_figure_from_results(self, plane_results, capsys):
        rc = main(["figure", "vector", "--results", str(plane_results)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spmz" in out
        assert "mean" in out

    def test_figure_svg_output(self, plane_results, tmp_path, capsys):
        svg = tmp_path / "fig.svg"
        rc = main(["figure", "vector", "--results", str(plane_results),
                   "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_figure_missing_results(self, tmp_path, capsys):
        rc = main(["figure", "vector", "--results",
                   str(tmp_path / "nope.json")])
        assert rc == 1
        assert "repro sweep" in capsys.readouterr().err

    def test_figure_wrong_cores(self, plane_results, capsys):
        rc = main(["figure", "vector", "--results", str(plane_results),
                   "--cores", "32"])
        assert rc == 1

    def test_scaling(self, capsys):
        assert main(["scaling", "spmz", "--ranks", "8"]) == 0
        out = capsys.readouterr().out
        assert "region eff" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "spec3d", "--ranks", "8",
                     "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out
        assert "#" in out

    def test_sweep_writes_results(self, tmp_path, capsys, monkeypatch):
        out_path = tmp_path / "out.json"
        # Monkeypatch the sweep spaces down for test speed.  Note:
        # `repro.cli.main` the module is shadowed by the `main` function
        # on the package, so resolve it via importlib.
        import importlib

        cli_main = importlib.import_module("repro.cli.main")

        tiny = DesignSpace(core_labels=("medium",),
                           cache_labels=("64M:512K",), frequencies=(2.0,),
                           vector_widths=(128,), core_counts=(32, 64))
        monkeypatch.setattr(cli_main, "DesignSpace", lambda **kw: tiny)
        rc = main(["sweep", "--apps", "hydro", "--plane",
                   "--out", str(out_path), "--processes", "1"])
        assert rc == 0
        back = ResultSet.load(out_path)
        # tiny space: 2 memory configs x 2 core counts
        assert len(back) == 4

    def test_sweep_batch_flags(self, tmp_path, capsys):
        """--no-batch and --batch-size select the evaluation engine;
        both engines must write identical results."""
        out_b = tmp_path / "batched.json"
        out_s = tmp_path / "scalar.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--batch-size", "4", "--out", str(out_b),
                   "--metrics-json", str(metrics)])
        assert rc == 0
        d = json.loads(metrics.read_text())["derived"]
        assert d["batched_configs"] == 8
        assert d["batch_fallbacks"] == 0
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--no-batch", "--out", str(out_s),
                   "--metrics-json", str(metrics)])
        assert rc == 0
        d = json.loads(metrics.read_text())["derived"]
        assert d["batched_configs"] == 0
        assert ResultSet.load(out_b) == ResultSet.load(out_s)

    def test_sweep_smoke_metrics_and_resume(self, tmp_path, capsys):
        out_path = tmp_path / "out.json"
        metrics_path = tmp_path / "metrics.json"
        journal = tmp_path / "journal.jsonl"
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--out", str(out_path), "--metrics-json",
                   str(metrics_path), "--resume", str(journal)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep execution metrics" in out
        assert "memo hit rate" in out
        assert journal.exists()
        data = json.loads(metrics_path.read_text())
        d = data["derived"]
        assert d["tasks_completed"] == 8  # 8-config smoke space x 1 app
        assert d["tasks_per_second"] > 0
        assert d["memo_hit_rate"] is not None and d["memo_hit_rate"] > 0
        assert d["retries"] == 0

        # Re-invoking with the same journal skips all the work.
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--out", str(out_path), "--metrics-json",
                   str(metrics_path), "--resume", str(journal)])
        assert rc == 0
        d = json.loads(metrics_path.read_text())["derived"]
        assert d["tasks_completed"] == 0
        assert d["tasks_skipped"] == 8

    def test_sweep_mode_defaults_to_fast(self):
        args = build_parser().parse_args(["sweep"])
        assert args.mode == "fast"
        assert args.ranks == 256
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--mode", "detailed"])

    def test_sweep_replay_mode(self, tmp_path, capsys):
        """--mode replay runs the event-driven trace replay per point
        and reports the replay activity in the metrics summary."""
        out_fast = tmp_path / "fast.json"
        out_replay = tmp_path / "replay.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--ranks", "8", "--out", str(out_fast)])
        assert rc == 0
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--mode", "replay", "--ranks", "8",
                   "--out", str(out_replay), "--metrics-json", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay events processed" in out
        d = json.loads(metrics.read_text())["derived"]
        assert d["replay_events"] > 0
        assert d["replay_messages"] > 0
        fast = ResultSet.load(out_fast)
        rep = ResultSet.load(out_replay)
        assert len(rep) == len(fast) == 8
        assert rep != fast

    def test_sweep_replay_batched_matches_scalar(self, tmp_path, capsys):
        """The config-vectorized replay engine (batched default) and the
        per-config scalar path must write identical ResultSets."""
        out_b = tmp_path / "batched.json"
        out_s = tmp_path / "scalar.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--mode", "replay", "--ranks", "8",
                   "--out", str(out_b), "--metrics-json", str(metrics)])
        assert rc == 0
        d = json.loads(metrics.read_text())["derived"]
        # The smoke network has an unlimited bus pool, so the order-free
        # path takes the array driver; no column rides lockstep.
        assert d["replay_array_events"] > 0
        assert d["replay_lockstep_events"] == 0
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--mode", "replay", "--ranks", "8", "--no-batch",
                   "--out", str(out_s)])
        assert rc == 0
        assert out_b.read_bytes() == out_s.read_bytes()

    def test_sweep_profile(self, tmp_path, capsys):
        out_path = tmp_path / "out.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--out", str(out_path), "--metrics-json", str(metrics),
                   "--profile", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top 5 hotspots by cumulative time" in out
        assert "cumtime" in out  # pstats table actually printed
        prof = metrics.with_suffix(".prof")
        assert prof.exists() and prof.stat().st_size > 0
        assert ResultSet.load(out_path)  # results unaffected

    def test_sweep_profile_defaults_next_to_out(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                   "--out", str(out_path), "--profile", "3"])
        assert rc == 0
        assert (tmp_path / "results.prof").exists()

    def test_sweep_profile_rejects_nonpositive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--apps", "spmz", "--smoke", "--processes", "1",
                  "--out", str(tmp_path / "o.json"), "--profile", "0"])


class TestRecommendAndValidate:
    def test_recommend_from_results(self, plane_results, capsys):
        rc = main(["recommend", "--results", str(plane_results)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Co-design recommendations" in out

    def test_recommend_missing_results(self, tmp_path, capsys):
        rc = main(["recommend", "--results", str(tmp_path / "nope.json")])
        assert rc == 1

    def test_validate_passes(self, capsys):
        rc = main(["validate", "--apps", "hydro", "--accesses", "20000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out

    def test_explain(self, capsys):
        rc = main(["explain", "spec3d", "element_kernel",
                   "--core", "lowend"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CPI stack" in out
        assert "bottleneck" in out

    def test_explain_default_kernel(self, capsys):
        assert main(["explain", "hydro"]) == 0
        assert "godunov" in capsys.readouterr().out

    def test_explain_unknown_kernel(self, capsys):
        assert main(["explain", "hydro", "nope"]) == 1

    def test_compare(self, capsys):
        rc = main(["compare", "medium/4chDDR4", "medium/8chDDR4",
                   "--apps", "lulesh"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GEOMEAN" in out

    def test_compare_bad_spec(self, capsys):
        rc = main(["compare", "medium", "warpdrive"])
        assert rc == 1

    def test_compare_same_node(self, capsys):
        rc = main(["compare", "medium", "medium"])
        assert rc == 1

    def test_roofline(self, capsys):
        assert main(["roofline", "lulesh"]) == 0
        out = capsys.readouterr().out
        assert "Roofline" in out
        assert "memory-bound" in out

    def test_tornado(self, capsys):
        assert main(["tornado", "btmz"]) == 0
        out = capsys.readouterr().out
        assert "Tornado" in out
        assert "frequency" in out

    def test_report(self, plane_results, tmp_path, capsys):
        out = tmp_path / "r.html"
        rc = main(["report", "--results", str(plane_results),
                   "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "<svg" in out.read_text()

    def test_report_missing_results(self, tmp_path):
        rc = main(["report", "--results", str(tmp_path / "no.json")])
        assert rc == 1
