"""Tests for declarative synthetic applications."""

import pytest

from repro.apps import make_app
from repro.config import baseline_node
from repro.core import Musa


def fft_spec(**phase_extra):
    return dict(
        name="fft",
        kernels={
            "transpose": dict(instr_per_task=400_000, fp=0.15, load=0.4,
                              store=0.3, ilp=2.2, vec_fraction=0.6,
                              trip_count=64, mlp=8, row_hit_rate=0.3,
                              reuse=[(8, 0.7), (50_000, 0.3)]),
            "butterfly": dict(instr_per_task=200_000, fp=0.45, load=0.25,
                              store=0.1, reuse=[(8, 0.9), (2_000, 0.1)]),
        },
        phases=[
            dict(kernel="transpose", n_tasks=128, imbalance=0.1,
                 **phase_extra),
            dict(kernel="butterfly", n_tasks=128),
        ],
    )


class TestMakeApp:
    def test_builds_and_simulates(self):
        app = make_app(**fft_spec())
        r = Musa(app).simulate_node(baseline_node(64))
        assert r.time_ns > 0
        assert r.app == "fft"

    def test_full_trace_machinery_works(self):
        app = make_app(**fft_spec(), )
        trace = app.burst_trace(n_ranks=8, n_iterations=1)
        assert trace.n_ranks == 8
        assert app.detailed_trace().covers(trace.kernel_names())

    def test_app_level_overrides(self):
        app = make_app(**fft_spec(), halo_bytes=1024, rank_imbalance=0.4)
        assert app.halo_bytes == 1024
        assert app.rank_imbalance == 0.4

    def test_serial_segment_supported(self):
        app = make_app(**fft_spec(serial_task_ns=100_000.0))
        phase = app.canonical_phases()[0]
        assert phase.tasks[0].duration_ns == pytest.approx(100_000.0)
        assert phase.tasks[1].deps == (0,)

    def test_int_alu_derived_from_remainder(self):
        app = make_app(**fft_spec())
        mix = app.kernels()["transpose"].mix
        assert mix.fp + mix.int_alu + mix.load + mix.store + mix.branch \
            + mix.other == pytest.approx(1.0)

    def test_deterministic(self):
        a = make_app(**fft_spec()).canonical_phases()
        b = make_app(**fft_spec()).canonical_phases()
        assert [t.duration_ns for t in a[0].tasks] == \
               [t.duration_ns for t in b[0].tasks]


class TestValidation:
    def test_unknown_kernel_field(self):
        spec = fft_spec()
        spec["kernels"]["transpose"]["simd"] = True
        with pytest.raises(TypeError, match="unknown fields"):
            make_app(**spec)

    def test_unknown_phase_field(self):
        spec = fft_spec()
        spec["phases"][0]["chunks"] = 4
        with pytest.raises(TypeError, match="unknown fields"):
            make_app(**spec)

    def test_phase_references_unknown_kernel(self):
        spec = fft_spec()
        spec["phases"][0]["kernel"] = "fftshift"
        with pytest.raises(ValueError, match="unknown kernel"):
            make_app(**spec)

    def test_needs_name_kernels_phases(self):
        with pytest.raises(ValueError):
            make_app(name="", kernels={}, phases=[])
