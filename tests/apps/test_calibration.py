"""Calibration tests: the application models must reproduce the paper's
published per-app characteristics (within model tolerances).

These pin the Fig. 1 runtime statistics and the qualitative rank order
of memory behaviour; the per-axis evaluation shapes are pinned in
``tests/integration/test_paper_claims.py``.
"""

import pytest

from repro.apps import APP_NAMES, get_app
from repro.core import Musa


@pytest.fixture(scope="module")
def fig1():
    """Fig. 1 characterization runs at the 32-core baseline."""
    from repro.config import baseline_node

    out = {}
    for name in APP_NAMES:
        out[name] = Musa(get_app(name)).simulate_node(baseline_node(32))
    return out


#: Paper Fig. 1 values at 32 cores: (L1, L2, L3 MPKI).  The model is
#: expected to land within the stated relative tolerance; spmz/spec3d
#: L3 MPKI are intentionally lower than the paper's print (see
#: EXPERIMENTS.md: the printed values are inconsistent with the paper's
#: own bandwidth narrative, which we prioritize).
_FIG1_MPKI = {
    "hydro": (5.98, 1.78, 0.19),
    "spmz": (96.99, 22.26, 13.80),
    "btmz": (24.14, 1.86, 0.57),
    "spec3d": (43.32, 6.95, 4.81),
    "lulesh": (13.50, 4.61, 5.27),
}


class TestFig1Mpki:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_l1_mpki(self, fig1, name):
        assert fig1[name].mpki_l1 == pytest.approx(_FIG1_MPKI[name][0],
                                                   rel=0.35)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_l2_mpki(self, fig1, name):
        # LULESH's far tail is deliberately enlarged so its node saturates
        # four DDR4 channels (the Fig. 8 anchor); its L2/L3 MPKI sit ~1.7x
        # above the paper's print as documented in EXPERIMENTS.md.
        rel = 0.9 if name == "lulesh" else 0.50
        assert fig1[name].mpki_l2 == pytest.approx(_FIG1_MPKI[name][1],
                                                   rel=rel)

    @pytest.mark.parametrize("name", ["hydro", "btmz", "lulesh"])
    def test_l3_mpki_calibrated_apps(self, fig1, name):
        assert fig1[name].mpki_l3 == pytest.approx(_FIG1_MPKI[name][2],
                                                   rel=0.50)

    def test_l1_rank_order(self, fig1):
        """SPMZ >> spec3d > btmz > lulesh > hydro (Fig. 1 shape)."""
        l1 = {n: fig1[n].mpki_l1 for n in APP_NAMES}
        assert l1["spmz"] > l1["spec3d"] > l1["btmz"] > l1["lulesh"] > l1["hydro"]

    def test_hydro_is_cache_friendly(self, fig1):
        assert fig1["hydro"].mpki_l3 < 0.5

    def test_mpki_hierarchy_consistent(self, fig1):
        for name in APP_NAMES:
            r = fig1[name]
            assert r.mpki_l1 >= r.mpki_l2 >= r.mpki_l3


class TestFig1Bandwidth:
    def test_lulesh_has_highest_request_rate(self, fig1):
        rates = {n: fig1[n].gmem_req_per_s for n in APP_NAMES}
        assert max(rates, key=rates.get) == "lulesh"

    def test_lulesh_magnitude(self, fig1):
        # Paper: ~0.5 G requests/s at 32 cores.
        assert fig1["lulesh"].gmem_req_per_s == pytest.approx(0.51, rel=0.35)

    def test_compute_apps_light_on_memory(self, fig1):
        assert fig1["hydro"].gmem_req_per_s < 0.1
        assert fig1["btmz"].gmem_req_per_s < 0.15

    def test_only_lulesh_near_saturation(self, fig1):
        assert fig1["lulesh"].bw_utilization > 0.6
        for name in ("hydro", "btmz"):
            assert fig1[name].bw_utilization < 0.3


class TestApplicationContrast:
    """Pairwise characteristics the paper's analysis hinges on."""

    def test_spmz_most_vectorizable(self):
        sigs = {n: get_app(n).detailed_trace() for n in APP_NAMES}
        vec = {n: max(s.vec_fraction for s in sigs[n].kernels.values())
               for n in APP_NAMES}
        assert max(vec, key=vec.get) == "spmz"

    def test_lulesh_short_loops(self):
        lulesh = get_app("lulesh").detailed_trace()
        assert all(s.trip_count < 8 for s in lulesh.kernels.values())

    def test_spec3d_lowest_mlp(self):
        sigs = {n: get_app(n).detailed_trace() for n in APP_NAMES}
        mlp = {n: min(s.mlp for s in sigs[n].kernels.values())
               for n in APP_NAMES}
        assert min(mlp, key=mlp.get) == "spec3d"

    def test_spec3d_poor_row_locality(self):
        spec = get_app("spec3d").detailed_trace()
        assert all(s.row_hit_rate <= 0.25 for s in spec.kernels.values())

    def test_lulesh_highest_rank_imbalance(self):
        imb = {n: get_app(n).rank_imbalance for n in APP_NAMES}
        assert max(imb, key=imb.get) == "lulesh"
        assert min(imb, key=imb.get) == "hydro"
