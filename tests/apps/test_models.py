"""Per-application structural tests."""

import pytest

from repro.apps import get_app


class TestHydro:
    def test_fine_grained_tasks(self):
        app = get_app("hydro")
        for phase in app.iteration_phases():
            assert phase.n_tasks >= 256  # fine loop chunks

    def test_low_task_imbalance(self):
        app = get_app("hydro")
        for phase in app.iteration_phases():
            durs = [t.duration_ns for t in phase.tasks]
            assert max(durs) / (sum(durs) / len(durs)) < 1.2


class TestSpMz:
    def test_zone_level_parallelism_only(self):
        app = get_app("spmz")
        for phase in app.iteration_phases():
            assert phase.n_tasks == app.n_zones  # no serial task, 1/zone

    def test_no_serialized_segments(self):
        # Paper Sec. V-A: all apps except SPMZ have serialized segments.
        app = get_app("spmz")
        for phase in app.iteration_phases():
            assert all(not t.deps for t in phase.tasks)
            assert phase.serial_ns == 0.0


class TestBtMz:
    def test_uneven_zones(self):
        app = get_app("btmz")
        phase = app.representative_phase()
        durs = [t.duration_ns for t in phase.tasks if t.deps]
        assert max(durs) / (sum(durs) / len(durs)) > 1.3

    def test_has_serialized_segment(self):
        app = get_app("btmz")
        phase = app.iteration_phases()[0]
        assert phase.tasks[1].deps == (0,)


class TestSpecfem3D:
    def test_few_coarse_tasks(self):
        app = get_app("spec3d")
        rep = app.representative_phase()
        # Far fewer tasks than a 64-core socket has cores (Fig. 3).
        assert rep.n_tasks <= 48

    def test_big_serial_segments(self):
        app = get_app("spec3d")
        rep = app.representative_phase()
        serial = rep.tasks[0].duration_ns
        mean = (rep.total_task_ns - serial) / (rep.n_tasks - 1)
        assert serial > 0.3 * mean  # serialized assembly is substantial


class TestLulesh:
    def test_multiple_reductions_per_step(self):
        assert get_app("lulesh").allreduce_per_iter >= 2

    def test_task_imbalance_pronounced(self):
        app = get_app("lulesh")
        rep = app.representative_phase()
        durs = [t.duration_ns for t in rep.tasks if t.deps]
        assert max(durs) / (sum(durs) / len(durs)) > 1.25


class TestDeterminism:
    @pytest.mark.parametrize("name", ["hydro", "spmz", "lulesh"])
    def test_phases_reproducible(self, name):
        a = get_app(name).iteration_phases()
        b = get_app(name).iteration_phases()
        for pa, pb in zip(a, b):
            assert [t.duration_ns for t in pa.tasks] == \
                   [t.duration_ns for t in pb.tasks]

    def test_traces_reproducible(self):
        a = get_app("btmz").burst_trace(4, 1)
        b = get_app("btmz").burst_trace(4, 1)
        assert a.phase_counts() == b.phase_counts()
        assert a.ranks[2].total_compute_ns == b.ranks[2].total_compute_ns
