"""Tests for the application-model base machinery."""

import numpy as np
import pytest

from repro.apps import APP_NAMES, all_apps, get_app, grid_neighbors, rank_grid_dims


class TestRankGrid:
    def test_256_is_8x8x4(self):
        assert rank_grid_dims(256) == (8, 8, 4)

    def test_cube(self):
        assert rank_grid_dims(64) == (4, 4, 4)

    def test_prime_degenerates(self):
        assert rank_grid_dims(7) == (7, 1, 1)

    def test_product_invariant(self):
        for n in (1, 2, 8, 16, 60, 128, 256, 512):
            dims = rank_grid_dims(n)
            assert dims[0] * dims[1] * dims[2] == n

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            rank_grid_dims(0)


class TestGridNeighbors:
    def test_interior_rank_has_six(self):
        assert len(grid_neighbors(0, (8, 8, 4))) == 6

    def test_neighbors_symmetric(self):
        dims = (4, 4, 2)
        for r in range(32):
            for nb in grid_neighbors(r, dims):
                assert r in grid_neighbors(nb, dims)

    def test_small_axis_dedup(self):
        # 2x2x2: +1 and -1 coincide along every axis -> 3 neighbours.
        assert len(grid_neighbors(0, (2, 2, 2))) == 3

    def test_axis_of_one_skipped(self):
        assert len(grid_neighbors(0, (4, 1, 1))) == 2

    def test_out_of_range_rank(self):
        with pytest.raises(ValueError):
            grid_neighbors(100, (2, 2, 2))


class TestRegistry:
    def test_five_apps_in_paper_order(self):
        assert APP_NAMES == ("hydro", "spmz", "btmz", "spec3d", "lulesh")
        assert [a.name for a in all_apps()] == list(APP_NAMES)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("miniFE")


class TestAppModelInterface:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_detailed_trace_covers_burst_kernels(self, name):
        app = get_app(name)
        detailed = app.detailed_trace()
        trace = app.burst_trace(n_ranks=4, n_iterations=1)
        assert detailed.covers(trace.kernel_names())

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_rank_scales_normalized(self, name):
        app = get_app(name)
        scales = app.rank_scales(256)
        assert scales.mean() == pytest.approx(1.0)
        assert scales.max() / scales.mean() - 1 == pytest.approx(
            app.rank_imbalance, abs=0.1)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_rank_scales_deterministic(self, name):
        app = get_app(name)
        np.testing.assert_array_equal(app.rank_scales(64),
                                      get_app(name).rank_scales(64))

    def test_single_rank_no_imbalance(self):
        assert get_app("lulesh").rank_scales(1)[0] == 1.0

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_burst_trace_structure(self, name):
        app = get_app(name)
        t = app.burst_trace(n_ranks=8, n_iterations=2)
        assert t.n_ranks == 8
        n_phases, n_mpi = t.phase_counts()
        n_app_phases = len(app.iteration_phases())
        assert n_phases == 8 * 2 * n_app_phases

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_representative_phase_is_heaviest(self, name):
        app = get_app(name)
        rep = app.representative_phase()
        assert rep.total_task_ns == max(
            p.total_task_ns for p in app.iteration_phases())

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_work_per_iteration_positive(self, name):
        assert get_app(name).work_per_iteration_ns() > 0
