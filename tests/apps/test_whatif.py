"""What-if studies via application characteristic overrides.

Sec. V-B4 of the paper hypothesizes: "if SPMZ was able to scale up to
64 cores with reasonable efficiency, it would demand more memory
bandwidth than our four channel configurations are able to provide and
we would obtain clear benefits on eight channel configurations."  The
override mechanism lets us test that counterfactual directly.
"""

import pytest

from repro.apps import SpMz, get_app
from repro.config import baseline_node
from repro.core import Musa


class TestOverrideMechanics:
    def test_override_applies(self):
        app = SpMz(n_zones=256)
        assert app.n_zones == 256
        assert app.representative_phase().n_tasks == 256

    def test_default_unchanged(self):
        SpMz(n_zones=256)
        assert SpMz().n_zones == 40

    def test_unknown_characteristic_rejected(self):
        with pytest.raises(TypeError):
            SpMz(zone_count=256)

    def test_method_override_rejected(self):
        with pytest.raises(TypeError):
            SpMz(kernels=None)


class TestSpmzScalingHypothesis:
    """The paper's counterfactual, reproduced."""

    @pytest.fixture(scope="class")
    def results(self):
        # A fast node corner (the configurations where per-core demand
        # is highest and the hypothesis bites hardest).
        node4 = baseline_node(64).with_(core="aggressive", vector_bits=512,
                                        frequency_ghz=3.0)
        node8 = node4.with_(memory="8chDDR4")
        out = {}
        for label, app in (("traced", SpMz()),
                           ("scalable", SpMz(n_zones=256))):
            musa = Musa(app)
            out[label] = {
                "4ch": musa.simulate_node(node4),
                "8ch": musa.simulate_node(node8),
            }
        return out

    def test_traced_spmz_barely_profits(self, results):
        r = results["traced"]
        assert r["4ch"].time_ns / r["8ch"].time_ns < 1.15

    def test_scalable_spmz_occupies_the_socket(self, results):
        assert (results["scalable"]["4ch"].occupancy
                > results["traced"]["4ch"].occupancy + 0.2)

    def test_scalable_spmz_saturates_four_channels(self, results):
        assert results["scalable"]["4ch"].bw_utilization > 0.95

    def test_scalable_spmz_profits_from_channels(self, results):
        """The paper's 'clear benefits on eight channel configurations'."""
        r = results["scalable"]
        traced = results["traced"]
        speedup = r["4ch"].time_ns / r["8ch"].time_ns
        assert speedup > 1.4
        assert speedup > (traced["4ch"].time_ns / traced["8ch"].time_ns) + 0.2
