"""Tests for node-spec string parsing."""

import pytest

from repro.config import baseline_node, format_node, parse_node


class TestParseNode:
    def test_full_spec(self):
        n = parse_node("aggressive/96M:1M/8chDDR4/2.5GHz/512b/32c")
        assert n.core.label == "aggressive"
        assert n.cache.label == "96M:1M"
        assert n.memory.label == "8chDDR4"
        assert n.frequency_ghz == 2.5
        assert n.vector_bits == 512
        assert n.n_cores == 32

    def test_field_order_irrelevant(self):
        a = parse_node("512b/aggressive/2.5GHz")
        b = parse_node("aggressive/2.5GHz/512b")
        assert a.label == b.label

    def test_defaults_from_baseline(self):
        n = parse_node("lowend")
        base = baseline_node()
        assert n.core.label == "lowend"
        assert n.cache == base.cache
        assert n.frequency_ghz == base.frequency_ghz

    def test_case_insensitive(self):
        n = parse_node("AGGRESSIVE/8CHDDR4/2.0ghz/128B/64C")
        assert n.core.label == "aggressive"
        assert n.memory.label == "8chDDR4"

    def test_explicit_base(self):
        base = baseline_node(32)
        n = parse_node("512b", base=base)
        assert n.n_cores == 32
        assert n.vector_bits == 512

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_node("medium/512bitties")

    def test_empty_spec(self):
        with pytest.raises(ValueError):
            parse_node("   ")

    def test_cores_suffix_variants(self):
        assert parse_node("32cores").n_cores == 32
        assert parse_node("1c").n_cores == 1


class TestRoundTrip:
    @pytest.mark.parametrize("spec", [
        "lowend/32M:256K/4chDDR4/1.5GHz/128b/1c",
        "medium/64M:512K/16chHBM/2GHz/64b/64c",
        "high/96M:1M/16chDDR4/3GHz/2048b/32c",
    ])
    def test_format_parse_round_trip(self, spec):
        n = parse_node(spec)
        assert format_node(parse_node(format_node(n))) == format_node(n)

    def test_all_design_space_round_trips(self):
        from repro.config import full_design_space

        for node in list(full_design_space())[::97]:
            assert parse_node(format_node(node)).label == node.label
