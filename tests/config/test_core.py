"""Tests for core microarchitecture configurations (Table I)."""

import pytest

from repro.config import CORE_LABELS, CORE_PRESETS, CoreConfig, core_preset


class TestPresets:
    def test_all_four_classes_exist(self):
        assert set(CORE_LABELS) == {"lowend", "medium", "high", "aggressive"}
        for label in CORE_LABELS:
            assert core_preset(label).label == label

    def test_table1_lowend_values(self):
        c = core_preset("lowend")
        assert (c.rob_size, c.issue_width, c.store_buffer) == (40, 2, 20)
        assert (c.n_alu, c.n_fpu) == (1, 3)
        assert (c.irf_size, c.frf_size) == (30, 50)

    def test_table1_medium_values(self):
        c = core_preset("medium")
        assert (c.rob_size, c.issue_width, c.store_buffer) == (180, 4, 100)
        assert (c.n_alu, c.n_fpu) == (3, 3)

    def test_table1_high_values(self):
        c = core_preset("high")
        assert (c.rob_size, c.issue_width, c.store_buffer) == (224, 6, 120)
        assert (c.n_alu, c.n_fpu) == (4, 3)
        assert (c.irf_size, c.frf_size) == (180, 100)

    def test_table1_aggressive_values(self):
        c = core_preset("aggressive")
        assert (c.rob_size, c.issue_width, c.store_buffer) == (300, 8, 150)
        assert (c.n_alu, c.n_fpu) == (5, 4)
        assert (c.irf_size, c.frf_size) == (210, 120)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown core preset"):
            core_preset("epic")

    def test_presets_are_distinct_objects(self):
        assert core_preset("medium") == CORE_PRESETS["medium"]


class TestWindowCapability:
    def test_monotone_across_classes(self):
        caps = [core_preset(l).window_capability for l in CORE_LABELS]
        assert caps == sorted(caps)

    def test_aggressive_is_reference(self):
        assert core_preset("aggressive").window_capability == pytest.approx(1.0)

    def test_lowend_is_small(self):
        assert core_preset("lowend").window_capability < 0.35

    def test_mlp_caps_grow_with_class(self):
        mlps = [core_preset(l).max_mlp for l in CORE_LABELS]
        assert mlps == sorted(mlps)


class TestValidation:
    def test_rejects_zero_rob(self):
        with pytest.raises(ValueError, match="rob_size"):
            CoreConfig(label="bad", rob_size=0, issue_width=2, store_buffer=10,
                       n_alu=1, n_fpu=1, irf_size=10, frf_size=10)

    def test_rejects_zero_issue(self):
        with pytest.raises(ValueError, match="issue_width"):
            CoreConfig(label="bad", rob_size=10, issue_width=0, store_buffer=10,
                       n_alu=1, n_fpu=1, irf_size=10, frf_size=10)

    def test_rejects_zero_fus(self):
        with pytest.raises(ValueError):
            CoreConfig(label="bad", rob_size=10, issue_width=2, store_buffer=10,
                       n_alu=0, n_fpu=1, irf_size=10, frf_size=10)

    def test_rejects_zero_store_buffer(self):
        with pytest.raises(ValueError, match="store_buffer"):
            CoreConfig(label="bad", rob_size=10, issue_width=2, store_buffer=0,
                       n_alu=1, n_fpu=1, irf_size=10, frf_size=10)

    def test_frozen(self):
        with pytest.raises(Exception):
            core_preset("medium").rob_size = 999


class TestScaled:
    def test_doubling(self):
        c = core_preset("medium").scaled(2.0)
        assert c.rob_size == 360
        assert c.issue_width == 8
        assert c.n_fpu == 6

    def test_shrinking_floors_at_one(self):
        c = core_preset("lowend").scaled(0.01)
        assert c.rob_size >= 1
        assert c.issue_width >= 1

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            core_preset("medium").scaled(0.0)

    def test_label_annotated(self):
        assert "x2" in core_preset("high").scaled(2.0).label
