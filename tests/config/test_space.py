"""Tests for the design space (Sec. IV-A) and Table II specials."""

import pytest

from repro.config import DesignSpace, full_design_space, unconventional_configs


class TestFullSpace:
    def test_864_points(self):
        # 4 cores x 3 caches x 2 memories x 4 freqs x 3 vectors x 3 counts
        assert len(full_design_space()) == 864

    def test_iteration_yields_all_unique(self):
        labels = [n.label for n in full_design_space()]
        assert len(labels) == len(set(labels)) == 864

    def test_iteration_is_deterministic(self):
        a = [n.label for n in full_design_space()]
        b = [n.label for n in full_design_space()]
        assert a == b

    def test_samples_per_bar_matches_paper(self):
        # Sec. V-B: "with a total of 864 simulations per application,
        # we are averaging 96 samples per bar" (vector axis, one panel).
        space = full_design_space()
        assert space.samples_per_bar("vector", panel_cores=32) == 96
        assert space.samples_per_bar("vector") == 288
        assert space.samples_per_bar("core", panel_cores=64) == 72
        assert space.samples_per_bar("memory", panel_cores=64) == 144

    def test_axis_values(self):
        space = full_design_space()
        assert space.axis_values("frequency") == (1.5, 2.0, 2.5, 3.0)
        assert space.axis_values("vector") == (128, 256, 512)
        assert space.axis_values("cores") == (1, 32, 64)


class TestRestrict:
    def test_single_value(self):
        sub = full_design_space().restrict(frequency=2.0, cores=64)
        assert len(sub) == 864 // 4 // 3
        for node in sub:
            assert node.frequency_ghz == 2.0
            assert node.n_cores == 64

    def test_multiple_values(self):
        sub = full_design_space().restrict(vector=(128, 512))
        assert len(sub) == 864 * 2 // 3

    def test_unknown_axis_raises(self):
        with pytest.raises(KeyError):
            full_design_space().restrict(threads=4)

    def test_value_not_in_axis_raises(self):
        with pytest.raises(ValueError):
            full_design_space().restrict(frequency=4.0)

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpace(frequencies=(2.0, 2.0))


class TestUnconventional:
    def test_table2_structure(self):
        uc = unconventional_configs()
        assert set(uc) == {"spmz", "lulesh"}
        assert set(uc["spmz"]) == {"Best-DSE", "Vector+", "Vector++"}
        assert set(uc["lulesh"]) == {"Best-DSE", "MEM+", "MEM++"}

    def test_all_64core_2ghz(self):
        for cfgs in unconventional_configs().values():
            for node in cfgs.values():
                assert node.n_cores == 64
                assert node.frequency_ghz == 2.0

    def test_spmz_vector_widths(self):
        uc = unconventional_configs()["spmz"]
        assert uc["Best-DSE"].vector_bits == 512
        assert uc["Vector+"].vector_bits == 1024
        assert uc["Vector++"].vector_bits == 2048

    def test_lulesh_table2_rows(self):
        uc = unconventional_configs()["lulesh"]
        assert uc["Best-DSE"].core.label == "high"
        assert uc["MEM+"].vector_bits == 64
        assert uc["MEM+"].memory.label == "16chDDR4"
        assert uc["MEM++"].memory.label == "16chHBM"
        assert uc["MEM+"].core.label == "medium"
