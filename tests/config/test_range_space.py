"""Range-generated spaces: axis generators and lazy random access.

The million-point sharded sweep and the active-search layer rely on
three contracts pinned here:

* :func:`axis_range` / :func:`axis_linspace` produce exact, inclusive
  endpoint values (ints stay ints, endpoints are not accumulated-error
  approximations) so axis values round-trip through journals;
* ``len(space)`` is pure arithmetic — no materialization;
* ``space.config_at(i)`` equals ``list(space)[i]`` for every ``i``, and
  ``coords_at``/``index_of`` are exact inverses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CACHE_LABELS,
    CORE_LABELS,
    MEMORY_LABELS,
    DesignSpace,
    axis_linspace,
    axis_range,
    range_design_space,
)

_SETTINGS = settings(max_examples=50, deadline=None)


class TestAxisRange:
    def test_inclusive_arithmetic_progression(self):
        assert axis_range(8, 128, 8) == tuple(range(8, 129, 8))

    def test_ints_stay_ints(self):
        for v in axis_range(4, 252, 4):
            assert type(v) is int

    def test_stop_not_on_grid_is_excluded(self):
        assert axis_range(1, 10, 4) == (1, 5, 9)

    def test_negative_step(self):
        assert axis_range(10, 1, -3) == (10, 7, 4, 1)

    def test_float_step(self):
        assert axis_range(0.5, 2.0, 0.5) == (0.5, 1.0, 1.5, 2.0)

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            axis_range(1, 10, 0)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            axis_range(10, 1, 1)


class TestAxisLinspace:
    def test_endpoints_exact(self):
        values = axis_linspace(1.0, 4.0, 31)
        assert len(values) == 31
        assert values[0] == 1.0
        assert values[-1] == 4.0  # the literal stop, not start + 30*step

    def test_single_point(self):
        assert axis_linspace(2.5, 99.0, 1) == (2.5,)

    def test_evenly_spaced(self):
        values = axis_linspace(0.0, 1.0, 5)
        assert values == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_plain_floats(self):
        for v in axis_linspace(1.0, 4.0, 7):
            assert type(v) is float

    def test_num_below_one_rejected(self):
        with pytest.raises(ValueError):
            axis_linspace(0.0, 1.0, 0)


class TestRangeDesignSpace:
    def test_default_exceeds_1e5_points(self):
        space = range_design_space()
        # 4 cores x 3 caches x 2 memories x 31 freqs x 3 vectors x 63
        # core counts.
        assert len(space) == 4 * 3 * 2 * 31 * 3 * 63 == 140_616
        assert len(space) >= 10 ** 5

    def test_len_is_arithmetic_not_materialization(self):
        # A space this size must answer len() without building configs;
        # a quadrillion-point space would hang here otherwise.
        space = range_design_space(
            frequencies=axis_linspace(1.0, 4.0, 10_000),
            core_counts=axis_range(1, 100_000, 1),
        )
        assert len(space) == 4 * 3 * 2 * 10_000 * 3 * 100_000

    def test_spot_indices_match_iteration_order(self):
        space = range_design_space(
            frequencies=axis_linspace(1.0, 4.0, 4),
            core_counts=axis_range(8, 32, 8),
        )
        materialized = list(space)
        for i in (0, 1, 7, len(space) // 2, len(space) - 1):
            assert space.config_at(i) == materialized[i]

    def test_config_at_out_of_range(self):
        space = range_design_space()
        with pytest.raises(IndexError):
            space.config_at(len(space))
        with pytest.raises(IndexError):
            space.config_at(-1)


def _axis_subset(values):
    return st.lists(st.sampled_from(values), min_size=1,
                    max_size=len(values), unique=True).map(tuple)


small_spaces = st.builds(
    DesignSpace,
    core_labels=_axis_subset(CORE_LABELS),
    cache_labels=_axis_subset(CACHE_LABELS),
    memory_labels=_axis_subset(MEMORY_LABELS),
    frequencies=st.just(axis_linspace(1.0, 4.0, 3)),
    vector_widths=st.just((128, 512)),
    core_counts=st.just(axis_range(8, 24, 8)),
)


class TestLazyIndexingProperties:
    @_SETTINGS
    @given(space=small_spaces, data=st.data())
    def test_config_at_matches_iteration(self, space, data):
        i = data.draw(st.integers(0, len(space) - 1))
        assert space.config_at(i) == list(space)[i]

    @_SETTINGS
    @given(space=small_spaces, data=st.data())
    def test_coords_index_roundtrip(self, space, data):
        i = data.draw(st.integers(0, len(space) - 1))
        coords = space.coords_at(i)
        assert space.index_of(coords) == i
        for c, length in zip(coords, space.axis_lengths()):
            assert 0 <= c < length

    @_SETTINGS
    @given(space=small_spaces)
    def test_full_enumeration_by_index(self, space):
        assert [space.config_at(i) for i in range(len(space))] == list(space)
