"""Tests for memory subsystem configurations."""

import pytest

from repro.config import MEMORY_LABELS, MemoryConfig, memory_preset


class TestPresets:
    def test_base_space_has_two_points(self):
        assert MEMORY_LABELS == ("4chDDR4", "8chDDR4")

    def test_channel_counts(self):
        assert memory_preset("4chDDR4").n_channels == 4
        assert memory_preset("8chDDR4").n_channels == 8
        assert memory_preset("16chDDR4").n_channels == 16
        assert memory_preset("16chHBM").n_channels == 16

    def test_ddr4_2333_channel_bandwidth(self):
        # 2333 MT/s x 8 B = 18.664 GB/s
        assert memory_preset("4chDDR4").channel_bw_gbs == pytest.approx(
            18.664, rel=1e-3)

    def test_aggregate_bandwidth_doubles(self):
        bw4 = memory_preset("4chDDR4").peak_bw_gbs
        bw8 = memory_preset("8chDDR4").peak_bw_gbs
        assert bw8 == pytest.approx(2 * bw4)

    def test_dimm_population_matches_paper(self):
        # Sec. IV-C: 4ch -> 8 DIMMs / 64 GB, 8ch -> 16 DIMMs / 128 GB.
        m4, m8 = memory_preset("4chDDR4"), memory_preset("8chDDR4")
        assert (m4.total_dimms, m4.total_capacity_gb) == (8, 64)
        assert (m8.total_dimms, m8.total_capacity_gb) == (16, 128)

    def test_hbm_has_no_energy_data(self):
        assert not memory_preset("16chHBM").energy_data_available
        assert memory_preset("16chDDR4").energy_data_available

    def test_hbm_latency_lower_than_ddr4(self):
        assert (memory_preset("16chHBM").idle_latency_ns
                < memory_preset("4chDDR4").idle_latency_ns)

    def test_hbm_bandwidth_exceeds_16ch_ddr4(self):
        assert (memory_preset("16chHBM").peak_bw_gbs
                > memory_preset("16chDDR4").peak_bw_gbs)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            memory_preset("2chDDR3")


class TestValidation:
    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            MemoryConfig(label="x", technology="DDR4", n_channels=0,
                         channel_bw_gbs=10, idle_latency_ns=60,
                         dimms_per_channel=2, dimm_capacity_gb=8)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            MemoryConfig(label="x", technology="DDR4", n_channels=4,
                         channel_bw_gbs=10, idle_latency_ns=0,
                         dimms_per_channel=2, dimm_capacity_gb=8)

    def test_rejects_negative_dimms(self):
        with pytest.raises(ValueError):
            MemoryConfig(label="x", technology="DDR4", n_channels=4,
                         channel_bw_gbs=10, idle_latency_ns=60,
                         dimms_per_channel=-1, dimm_capacity_gb=8)
