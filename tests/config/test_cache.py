"""Tests for cache hierarchy configurations (Table I)."""

import pytest

from repro.config import (
    CACHE_LABELS,
    KIB,
    LINE_BYTES,
    MIB,
    CacheHierarchy,
    CacheLevelConfig,
    cache_preset,
)


class TestPresets:
    def test_three_points(self):
        assert CACHE_LABELS == ("32M:256K", "64M:512K", "96M:1M")

    @pytest.mark.parametrize("label,l3_mb,l2_kb,l3_lat,l2_lat,l2_assoc", [
        ("32M:256K", 32, 256, 68, 9, 8),
        ("64M:512K", 64, 512, 70, 11, 16),
        ("96M:1M", 96, 1024, 72, 13, 16),
    ])
    def test_table1_values(self, label, l3_mb, l2_kb, l3_lat, l2_lat, l2_assoc):
        h = cache_preset(label)
        assert h.l3.size_bytes == l3_mb * MIB
        assert h.l2.size_bytes == l2_kb * KIB
        assert h.l3.latency_cycles == l3_lat
        assert h.l2.latency_cycles == l2_lat
        assert h.l2.associativity == l2_assoc
        assert h.l3.associativity == 16

    def test_l1_fixed_32k(self):
        for label in CACHE_LABELS:
            assert cache_preset(label).l1.size_bytes == 32 * KIB

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            cache_preset("128M:2M")


class TestGeometry:
    def test_line_count(self):
        l1 = cache_preset("64M:512K").l1
        assert l1.n_lines == 32 * KIB // LINE_BYTES == 512

    def test_sets_times_ways_is_lines(self):
        for label in CACHE_LABELS:
            for lvl in cache_preset(label).levels:
                assert lvl.n_sets * lvl.associativity == lvl.n_lines

    def test_l3_fair_share(self):
        h = cache_preset("64M:512K")
        assert h.l3_per_core_bytes(64) == pytest.approx(1 * MIB)
        assert h.l3_per_core_bytes(1) == 64 * MIB

    def test_share_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            cache_preset("64M:512K").l3_per_core_bytes(0)


class TestValidation:
    def test_size_must_divide_geometry(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheLevelConfig("L1", size_bytes=1000, associativity=8,
                             latency_cycles=4)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CacheLevelConfig("L1", size_bytes=32 * KIB, associativity=8,
                             latency_cycles=-1)

    def test_hierarchy_capacity_ordering(self):
        l1 = CacheLevelConfig("L1", 32 * KIB, 8, 4)
        l2 = CacheLevelConfig("L2", 32 * KIB, 8, 9)  # same size as L1
        l3 = CacheLevelConfig("L3", 32 * MIB, 16, 68)
        with pytest.raises(ValueError, match="L1 < L2 < L3"):
            CacheHierarchy(label="bad", l1=l1, l2=l2, l3=l3)

    def test_hierarchy_latency_ordering(self):
        l1 = CacheLevelConfig("L1", 32 * KIB, 8, 10)
        l2 = CacheLevelConfig("L2", 256 * KIB, 8, 9)  # faster than L1
        l3 = CacheLevelConfig("L3", 32 * MIB, 16, 68)
        with pytest.raises(ValueError, match="latencies"):
            CacheHierarchy(label="bad", l1=l1, l2=l2, l3=l3)
