"""Tests for full node configurations."""

import pytest

from repro.config import NodeConfig, baseline_node, cache_preset, core_preset, memory_preset


class TestBaseline:
    def test_baseline_matches_characterization_config(self):
        n = baseline_node(32)
        assert n.core.label == "medium"
        assert n.cache.label == "64M:512K"
        assert n.memory.label == "4chDDR4"
        assert n.frequency_ghz == 2.0
        assert n.vector_bits == 128
        assert n.n_cores == 32

    def test_default_core_count(self):
        assert baseline_node().n_cores == 64


class TestDerived:
    def test_cycle_time(self):
        assert baseline_node().cycle_ns == pytest.approx(0.5)
        assert baseline_node().with_(frequency_ghz=2.5).cycle_ns == pytest.approx(0.4)

    @pytest.mark.parametrize("bits,lanes", [(64, 1), (128, 2), (256, 4),
                                            (512, 8), (1024, 16), (2048, 32)])
    def test_vector_lanes(self, bits, lanes):
        assert baseline_node().with_(vector_bits=bits).vector_lanes == lanes

    def test_memory_latency_scales_with_frequency(self):
        slow = baseline_node().with_(frequency_ghz=1.5)
        fast = baseline_node().with_(frequency_ghz=3.0)
        assert fast.memory_latency_cycles() == pytest.approx(
            2 * slow.memory_latency_cycles())

    def test_label_is_unique_per_config(self):
        a = baseline_node()
        b = a.with_(vector_bits=256)
        c = a.with_(frequency_ghz=2.5)
        assert len({a.label, b.label, c.label}) == 3

    def test_axis_values_keys(self):
        ax = baseline_node().axis_values()
        assert set(ax) == {"core", "cache", "memory", "frequency", "vector",
                           "cores"}


class TestWith:
    def test_string_shorthands(self):
        n = baseline_node().with_(core="aggressive", cache="96M:1M",
                                  memory="8chDDR4")
        assert n.core == core_preset("aggressive")
        assert n.cache == cache_preset("96M:1M")
        assert n.memory == memory_preset("8chDDR4")

    def test_original_unchanged(self):
        a = baseline_node()
        a.with_(n_cores=1)
        assert a.n_cores == 64


class TestValidation:
    def test_rejects_odd_vector_width(self):
        with pytest.raises(ValueError, match="vector_bits"):
            baseline_node().with_(vector_bits=192)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            baseline_node().with_(n_cores=0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            baseline_node().with_(frequency_ghz=0.0)
