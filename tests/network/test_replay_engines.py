"""Engine equivalence, matching-order regressions, and deadlock
diagnostics for the reactive replay engine.

The event-driven engine and the polling reference both step the ready
rank with the minimum ``(clock, rank)`` key, so the finite-bus pool —
the only shared resource whose grant order matters — is exercised in
one deterministic global-time order.  These tests pin that contract:
identical ``ReplayResult``s across engines and across rank-iteration
orders, and absolute timings that charge bus and link serialization on
*both* matching directions (the two historical order-dependence bugs).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.core.musa import Musa
from repro.network import NetworkConfig, replay
from repro.network.replay import REPLAY_ENGINES
from repro.trace import BurstTrace, ComputePhase, MpiCall, RankTrace, TaskRecord


def phase(duration=100.0, phase_id=0):
    return ComputePhase(phase_id=phase_id, tasks=(
        TaskRecord(kernel="k", duration_ns=duration),))


def const_duration(value):
    return lambda rank, ph: value


def trace(rank_events, app="t"):
    ranks = tuple(RankTrace(rank=r, events=tuple(evs))
                  for r, evs in enumerate(rank_events))
    return BurstTrace(app=app, ranks=ranks)


def zero_net(**kw):
    """1 byte/ns wire, no latency, no per-call CPU overhead."""
    kw.setdefault("latency_us", 0.0)
    kw.setdefault("bandwidth_gbs", 1.0)
    kw.setdefault("cpu_overhead_us", 0.0)
    return NetworkConfig(**kw)


def assert_results_equal(a, b):
    assert a.total_ns == b.total_ns
    assert np.array_equal(a.compute_ns, b.compute_ns)
    assert np.array_equal(a.p2p_ns, b.p2p_ns)
    assert np.array_equal(a.collective_ns, b.collective_ns)
    assert a.n_messages == b.n_messages
    assert a.bytes_sent == b.bytes_sent


class TestEagerCostRegressions:
    """Late-matched buffered sends must charge bus and link time.

    Historically the sender buffered only ``(ready_ns, size)`` and a
    receive matched later re-priced the message without the bus grant
    or the sender's link serialization, so the cost depended on which
    side was processed first.
    """

    def test_congested_bus_charged_on_late_match(self):
        # One bus.  Rank 0's 1000 B transfer holds it for [0, 1000];
        # rank 2's 100 B message therefore rides the wire [1000, 1100]
        # and rank 3 must not see it before 1100 (the dropped-bus bug
        # priced it at 100).
        net = zero_net(n_buses=1)
        t = trace([
            [MpiCall(kind="isend", peer=1, size_bytes=1000, request=0),
             MpiCall(kind="wait", request=0)],
            [MpiCall(kind="recv", peer=0, size_bytes=1000)],
            [MpiCall(kind="isend", peer=3, size_bytes=100, request=0),
             MpiCall(kind="wait", request=0)],
            [MpiCall(kind="recv", peer=2, size_bytes=100)],
        ])
        for engine in REPLAY_ENGINES:
            res = replay(t, net, const_duration(0.0), engine=engine)
            assert res.p2p_ns[3] == pytest.approx(1100.0)
            assert res.total_ns == pytest.approx(1100.0)

    def test_sender_link_serializes_buffered_sends(self):
        # Unlimited buses, but one outgoing link: rank 0's second
        # message cannot start before the first finished, so rank 2
        # completes at 200 even though it posted its receive at 0.
        net = zero_net()
        t = trace([
            [MpiCall(kind="isend", peer=1, size_bytes=100, request=0),
             MpiCall(kind="isend", peer=2, size_bytes=100, request=1),
             MpiCall(kind="wait", request=0),
             MpiCall(kind="wait", request=1)],
            [MpiCall(kind="recv", peer=0, size_bytes=100)],
            [MpiCall(kind="recv", peer=0, size_bytes=100)],
        ])
        for engine in REPLAY_ENGINES:
            res = replay(t, net, const_duration(0.0), engine=engine)
            assert res.p2p_ns[1] == pytest.approx(100.0)
            assert res.p2p_ns[2] == pytest.approx(200.0)


class TestRendezvousCostRegressions:
    """Both rendezvous match directions must price identically.

    Historically a send matched from the receiver side bypassed the
    finite-bus pool and never advanced the sender's ``link_free``.
    """

    #: rendezvous for anything above 64 B
    NET = dict(n_buses=1, eager_threshold_bytes=64)

    def _run(self, t, durations, engine):
        return replay(t, zero_net(**self.NET), durations, engine=engine)

    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_receiver_side_match_charges_bus(self, engine):
        # Ranks 2->3 hold the single bus for [0, 1000].  Rank 0's
        # rendezvous send is advertised at 0; rank 1 matches it from
        # the receiver side at 500 — the transfer still has to wait
        # for the bus, so completion is 2000, not 1500.
        t = trace([
            [MpiCall(kind="send", peer=1, size_bytes=1000)],
            [phase(500.0), MpiCall(kind="recv", peer=0, size_bytes=1000)],
            [MpiCall(kind="send", peer=3, size_bytes=1000)],
            [MpiCall(kind="recv", peer=2, size_bytes=1000)],
        ])
        res = self._run(t, lambda r, p: 500.0, engine)
        assert res.total_ns == pytest.approx(2000.0)

    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_match_directions_price_identically(self, engine):
        # The mirrored scenario — who waits for whom is swapped, so the
        # sender-side path prices one trace and the receiver-side path
        # the other — must cost exactly the same.
        congestor = [
            [MpiCall(kind="send", peer=3, size_bytes=1000)],
            [MpiCall(kind="recv", peer=2, size_bytes=1000)],
        ]
        recv_side = trace([
            [MpiCall(kind="send", peer=1, size_bytes=1000)],
            [phase(500.0), MpiCall(kind="recv", peer=0, size_bytes=1000)],
        ] + congestor)
        send_side = trace([
            [phase(500.0), MpiCall(kind="send", peer=1, size_bytes=1000)],
            [MpiCall(kind="recv", peer=0, size_bytes=1000)],
        ] + congestor)
        a = self._run(recv_side, lambda r, p: 500.0, engine)
        b = self._run(send_side, lambda r, p: 500.0, engine)
        assert a.total_ns == b.total_ns == pytest.approx(2000.0)
        assert a.p2p_ns[0] + a.p2p_ns[1] == pytest.approx(
            b.p2p_ns[0] + b.p2p_ns[1])

    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_receiver_side_match_advances_sender_link(self, engine):
        # Two rendezvous sends from rank 0, both matched from the
        # receiver side at t=10.  The second transfer serializes on
        # rank 0's outgoing link: [10, 1010] then [1010, 2010].
        t = trace([
            [MpiCall(kind="send", peer=1, size_bytes=1000),
             MpiCall(kind="send", peer=2, size_bytes=1000)],
            [phase(10.0), MpiCall(kind="recv", peer=0, size_bytes=1000)],
            [phase(10.0), MpiCall(kind="recv", peer=0, size_bytes=1000)],
        ])
        res = replay(t, zero_net(eager_threshold_bytes=64),
                     lambda r, p: 10.0, engine=engine)
        assert res.total_ns == pytest.approx(2010.0)


class TestDeadlockDiagnostic:
    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_names_stuck_ranks_and_events(self, engine):
        t = trace([
            [phase(), MpiCall(kind="recv", peer=1, size_bytes=8)],
            [phase()],
        ])
        with pytest.raises(RuntimeError,
                           match=r"rank 0@event1:recv\(peer=1\)"):
            replay(t, zero_net(), const_duration(1.0), engine=engine)

    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_counts_stuck_ranks(self, engine):
        t = trace([
            [MpiCall(kind="barrier")],
            [MpiCall(kind="barrier")],
            [],
        ])
        with pytest.raises(RuntimeError, match=r"2 rank\(s\) stuck"):
            replay(t, zero_net(), const_duration(0.0), engine=engine)


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        t = trace([[phase()]])
        with pytest.raises(ValueError, match="engine"):
            replay(t, zero_net(), const_duration(1.0), engine="bogus")

    def test_rank_order_must_be_permutation(self):
        t = trace([[phase()], [phase()]])
        with pytest.raises(ValueError, match="rank_order"):
            replay(t, zero_net(), const_duration(1.0), rank_order=[0, 0])


class TestAppTraceEquivalence:
    def test_lulesh_trace_engines_agree(self):
        musa = Musa(get_app("lulesh"))
        tr = musa._burst_trace(8, 1)
        scales = musa.app.rank_scales(8)
        per_phase = {id(p): 1000.0 * (i + 1)
                     for i, p in enumerate(musa.phases)}

        def duration(rank, ph):
            return per_phase[id(ph)] * scales[rank]

        for n_buses in (0, 4):
            net = NetworkConfig(
                latency_us=musa.network.latency_us,
                bandwidth_gbs=musa.network.bandwidth_gbs,
                cpu_overhead_us=musa.network.cpu_overhead_us,
                n_buses=n_buses)
            ref = replay(tr, net, duration, engine="polling")
            ev = replay(tr, net, duration, engine="event")
            assert_results_equal(ref, ev)
            shuffled = list(reversed(range(8)))
            assert_results_equal(
                ref, replay(tr, net, duration, engine="event",
                            rank_order=shuffled))


# --------------------------------------------------------------------------
# Property: replay totals are invariant to rank-iteration order and to
# engine, for arbitrary deadlock-free traces (round-structured: every
# round is either a collective joined by all ranks or a set of disjoint
# matched point-to-point pairs).
# --------------------------------------------------------------------------

@st.composite
def round_traces(draw):
    n_ranks = draw(st.integers(2, 5))
    n_rounds = draw(st.integers(1, 4))
    events = [[] for _ in range(n_ranks)]
    next_req = [0] * n_ranks
    pid = 0
    for _ in range(n_rounds):
        if draw(st.booleans()):
            kind = draw(st.sampled_from(["allreduce", "barrier", "bcast"]))
            size = 0 if kind == "barrier" else draw(st.integers(0, 4096))
            for r in range(n_ranks):
                events[r].append(MpiCall(kind=kind, size_bytes=size))
        else:
            perm = draw(st.permutations(range(n_ranks)))
            for i in range(0, n_ranks - 1, 2):
                a, b = perm[i], perm[i + 1]
                size = draw(st.integers(1, 100_000))
                if draw(st.booleans()):  # nonblocking pair
                    ra, rb = next_req[a], next_req[b]
                    next_req[a] += 1
                    next_req[b] += 1
                    events[a] += [MpiCall(kind="isend", peer=b,
                                          size_bytes=size, request=ra),
                                  MpiCall(kind="wait", request=ra)]
                    events[b] += [MpiCall(kind="irecv", peer=a,
                                          size_bytes=size, request=rb),
                                  MpiCall(kind="wait", request=rb)]
                else:  # blocking pair
                    events[a].append(MpiCall(kind="send", peer=b,
                                             size_bytes=size))
                    events[b].append(MpiCall(kind="recv", peer=a,
                                             size_bytes=size))
        if draw(st.booleans()):
            for r in range(n_ranks):
                events[r].append(phase(phase_id=pid))
            pid += 1
    order = draw(st.permutations(range(n_ranks)))
    n_buses = draw(st.sampled_from([0, 1, 2]))
    return trace(events), list(order), n_buses


def _skewed_duration(rank, ph):
    # Deterministic, rank- and phase-dependent compute time.
    return 50.0 * ((rank * 7 + ph.phase_id * 13) % 5 + 1)


class TestOrderIndependenceProperty:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=round_traces())
    def test_engine_and_rank_order_invariant(self, data):
        t, order, n_buses = data
        net = NetworkConfig(latency_us=0.1, bandwidth_gbs=10.0,
                            cpu_overhead_us=0.05, n_buses=n_buses)
        ref = replay(t, net, _skewed_duration, engine="polling")
        for engine in REPLAY_ENGINES:
            assert_results_equal(
                ref, replay(t, net, _skewed_duration, engine=engine,
                            rank_order=order))
