"""Config-vectorized replay ≡ per-config scalar replay, bit for bit.

The batched engine's contract is exact equivalence: for every
configuration column, ``replay_batch`` must produce the same
``ReplayResult`` — down to the float bits — that the scalar engine
produces when handed that column's duration function.  The property
tests drive the array/worklist drivers (unlimited buses) and the
fork-on-divergence lockstep driver (finite buses), with per-config
compute scalings chosen to flip the global ``(clock, rank)`` step
order mid-replay; the regressions pin the forced-divergence fork path,
the finite-bus fast-path peel bound, the collective pricing path, and
the :func:`_order_free` classification.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.core.musa import Musa
from repro.network import NetworkConfig, replay
from repro.network.replay_batch import _order_free, replay_batch
from repro.obs import get_metrics
from repro.trace import MpiCall

from .test_replay_engines import (
    _skewed_duration,
    assert_results_equal,
    phase,
    round_traces,
    trace,
    zero_net,
)

#: Scale factors that reorder ranks' virtual clocks between columns.
SCALE_POOL = (0.1, 0.5, 1.0, 1.0 + 2**-40, 2.0, 7.3)


def batch_duration(scales):
    """Per-config duration column: the skewed scalar duration x scale."""
    arr = np.asarray(scales, dtype=np.float64)

    def fn(rank, ph):
        return _skewed_duration(rank, ph) * arr

    return fn


def assert_batch_equals_scalar(t, net, scales, **kw):
    dur = batch_duration(scales)
    out = replay_batch(t, net, dur, len(scales), **kw)
    for c in range(len(scales)):
        ref = replay(t, net, lambda r, p, _c=c: dur(r, p)[_c])
        assert_results_equal(ref, out[c])
    return out


class TestPropertyEquivalence:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=round_traces(),
           scales=st.lists(st.sampled_from(SCALE_POOL), min_size=1,
                           max_size=6))
    def test_batched_equals_scalar(self, data, scales):
        t, _, n_buses = data
        net = NetworkConfig(latency_us=0.1, bandwidth_gbs=10.0,
                            cpu_overhead_us=0.05, n_buses=n_buses)
        assert_batch_equals_scalar(t, net, scales)

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=round_traces(),
           n_buses=st.integers(1, 3),
           scales=st.lists(st.sampled_from(SCALE_POOL), min_size=2,
                           max_size=8))
    def test_finite_bus_lockstep_equals_scalar(self, data, n_buses,
                                               scales):
        # Force the fork-on-divergence lockstep driver (a finite bus
        # pool is never order-free): vectorized bus arbitration must
        # equal scalar _ReplayCore across bus counts x rank counts x
        # scale vectors, including scale ties that exercise the
        # smallest-rank argmin tie-break.
        t, _, _ = data
        net = NetworkConfig(latency_us=0.1, bandwidth_gbs=10.0,
                            cpu_overhead_us=0.05, n_buses=n_buses)
        assert not _order_free(t, net)
        reg = get_metrics()
        peeled0 = reg.counter("replay.batch.peeled_configs")
        assert_batch_equals_scalar(t, net, scales)
        assert reg.counter("replay.batch.peeled_configs") == peeled0


class TestCollectivePricing:
    """Collectives must price identically in batched and scalar paths."""

    def test_collective_heavy_trace(self):
        n = 4
        evs = []
        for r in range(n):
            evs.append([
                phase(phase_id=0),
                MpiCall(kind="allreduce", size_bytes=64),
                phase(phase_id=1),
                MpiCall(kind="barrier"),
                MpiCall(kind="bcast", size_bytes=4096),
                phase(phase_id=2),
                MpiCall(kind="allreduce", size_bytes=8),
            ])
        t = trace(evs)
        scales = (0.25, 1.0, 3.0, 1.0 + 2**-30)
        for n_buses in (0, 2):
            net = zero_net(latency_us=0.2, cpu_overhead_us=0.1,
                           n_buses=n_buses)
            out = assert_batch_equals_scalar(t, net, scales)
            # Collective time must be non-trivial for the test to bite.
            assert all(r.collective_ns.sum() > 0 for r in out)


class TestForcedDivergence:
    """Per-config compute scalings that flip the step order mid-replay
    must *fork* the lockstep group at the divergence point — no column
    leaves the vectorized path — and still match the scalar engine bit
    for bit."""

    def _racing_trace(self):
        # Ranks 0 and 2 race for the single bus; whichever reaches its
        # isend first (per config) holds the bus for 1000 ns.
        return trace([
            [phase(phase_id=0),
             MpiCall(kind="isend", peer=1, size_bytes=1000, request=0),
             MpiCall(kind="wait", request=0)],
            [MpiCall(kind="recv", peer=0, size_bytes=1000)],
            [phase(phase_id=0),
             MpiCall(kind="isend", peer=3, size_bytes=1000, request=0),
             MpiCall(kind="wait", request=0)],
            [MpiCall(kind="recv", peer=2, size_bytes=1000)],
        ])

    def duration(self, rank, ph):
        # Config 0: rank 0 wins the race; config 1: rank 2 wins.
        cols = {0: np.array([10.0, 500.0]), 2: np.array([500.0, 10.0])}
        return cols.get(rank, np.zeros(2))

    def test_finite_bus_forks_diverged_column(self):
        net = zero_net(n_buses=1)
        reg = get_metrics()
        peeled0 = reg.counter("replay.batch.peeled_configs")
        forked0 = reg.counter("replay.batch.forked_groups")
        drv0 = reg.counter("replay.batch.driver.lockstep")
        out = replay_batch(self._racing_trace(), net, self.duration, 2)
        # The disagreeing column forks into its own lockstep group; the
        # scalar engine is never consulted (peels are deadlock-only).
        assert reg.counter("replay.batch.peeled_configs") == peeled0
        assert reg.counter("replay.batch.forked_groups") - forked0 == 1
        assert reg.counter("replay.batch.driver.lockstep") - drv0 == 1
        for c in range(2):
            ref = replay(self._racing_trace(), net,
                         lambda r, p, _c=c: self.duration(r, p)[_c])
            assert_results_equal(ref, out[c])

    def test_unlimited_buses_take_array_path(self):
        # Same trace, no bus contention: order-free, so the structural
        # tape prices the whole batch and no column peels even though
        # the step orders differ between configs.
        net = zero_net(n_buses=0)
        t = self._racing_trace()
        assert _order_free(t, net)
        reg = get_metrics()
        peeled0 = reg.counter("replay.batch.peeled_configs")
        arr0 = reg.counter("replay.batch.array_events")
        out = replay_batch(t, net, self.duration, 2)
        assert reg.counter("replay.batch.peeled_configs") == peeled0
        assert reg.counter("replay.batch.array_events") > arr0
        for c in range(2):
            ref = replay(t, net,
                         lambda r, p, _c=c: self.duration(r, p)[_c])
            assert_results_equal(ref, out[c])

    def test_array_driver_matches_worklist_driver(self):
        # The PR4-era event-at-a-time worklist driver is retained
        # behind array_driver=False; both must be bit-identical.
        net = zero_net(n_buses=0)
        t = self._racing_trace()
        reg = get_metrics()
        work0 = reg.counter("replay.batch.worklist_events")
        lock0 = reg.counter("replay.batch.lockstep_events")
        arr0 = reg.counter("replay.batch.array_events")
        out_w = replay_batch(t, net, self.duration, 2, array_driver=False)
        # The worklist run reports worklist events — never lockstep or
        # array ones (each driver owns exactly one counter).
        assert reg.counter("replay.batch.worklist_events") > work0
        assert reg.counter("replay.batch.lockstep_events") == lock0
        assert reg.counter("replay.batch.array_events") == arr0
        out_a = replay_batch(t, net, self.duration, 2)
        assert reg.counter("replay.batch.array_events") > arr0
        for c in range(2):
            assert_results_equal(out_w[c], out_a[c])


class TestFiniteBusFastPath:
    """Regression pin for the BENCH_replay_batch finite-bus scenario:
    16 LULESH ranks x 32 configs x 8 buses must stay on the vectorized
    lockstep path (the PR4 peel driver collapsed it to 29/32 scalar
    re-runs)."""

    def test_bench_scenario_peels_at_most_two(self):
        musa = Musa(get_app("lulesh"))
        t = musa._burst_trace(16, 1)
        scales = musa.app.rank_scales(16)
        base = {id(p): musa.burst_phase(p, 64).makespan_ns
                for p in musa.phases}
        cfg = 1.0 + (np.arange(32, dtype=np.float64) % 7) * 0.05

        def dur(rank, ph):
            return base[id(ph)] * scales[rank] * cfg

        import dataclasses
        net = dataclasses.replace(musa.network, n_buses=8)
        reg = get_metrics()
        peeled0 = reg.counter("replay.batch.peeled_configs")
        lock0 = reg.counter("replay.batch.lockstep_events")
        out = replay_batch(t, net, dur, 32)
        assert len(out) == 32 and all(r is not None for r in out)
        assert reg.counter("replay.batch.peeled_configs") - peeled0 <= 2
        assert reg.counter("replay.batch.lockstep_events") > lock0
        # Spot-check bit-identity on the extreme columns.
        for c in (0, 6, 31):
            ref = replay(t, net,
                         lambda r, p, _c=c: float(dur(r, p)[_c]))
            assert_results_equal(ref, out[c])


class TestOrderFreeClassification:
    def test_finite_bus_pool_is_order_dependent(self):
        t = trace([[phase()], [phase()]])
        assert not _order_free(t, zero_net(n_buses=1))
        assert _order_free(t, zero_net(n_buses=0))

    def test_mixed_protocol_key_is_order_dependent(self):
        # One (src, dst, tag) key carrying both an isend (buffered) and
        # a rendezvous send: matching prefers whichever buffered send
        # is outstanding, so pairing depends on step order.
        net = zero_net(eager_threshold_bytes=64)
        t = trace([
            [MpiCall(kind="isend", peer=1, size_bytes=8, request=0),
             MpiCall(kind="wait", request=0),
             MpiCall(kind="send", peer=1, size_bytes=1000)],
            [MpiCall(kind="recv", peer=0, size_bytes=8),
             MpiCall(kind="recv", peer=0, size_bytes=1000)],
        ])
        assert not _order_free(t, net)
        # The lockstep driver still reproduces the scalar results.
        assert_batch_equals_scalar(t, net, (0.5, 1.0, 2.0))

    def test_distinct_tags_keep_keys_pure(self):
        net = zero_net(eager_threshold_bytes=64)
        t = trace([
            [MpiCall(kind="isend", peer=1, size_bytes=8, request=0,
                     tag=1),
             MpiCall(kind="wait", request=0),
             MpiCall(kind="send", peer=1, size_bytes=1000, tag=2)],
            [MpiCall(kind="recv", peer=0, size_bytes=8, tag=1),
             MpiCall(kind="recv", peer=0, size_bytes=1000, tag=2)],
        ])
        assert _order_free(t, net)
        assert_batch_equals_scalar(t, net, (0.5, 1.0, 2.0))


class TestDeadlockAndValidation:
    @pytest.mark.parametrize("n_buses", [0, 1])
    def test_deadlock_reproduces_scalar_diagnostic(self, n_buses):
        t = trace([
            [phase(), MpiCall(kind="recv", peer=1, size_bytes=8)],
            [phase()],
        ])
        with pytest.raises(RuntimeError,
                           match=r"rank 0@event1:recv\(peer=1\)"):
            replay_batch(t, zero_net(n_buses=n_buses),
                         batch_duration((1.0, 2.0)), 2)

    def test_rejects_nonpositive_config_count(self):
        t = trace([[phase()]])
        with pytest.raises(ValueError, match="n_configs"):
            replay_batch(t, zero_net(), batch_duration(()), 0)

    def test_rejects_negative_duration(self):
        t = trace([[phase()]])
        with pytest.raises(ValueError, match="non-negative"):
            replay_batch(t, zero_net(),
                         lambda r, p: np.array([1.0, -1.0]), 2)


class TestAppTraceEquivalence:
    def test_lulesh_trace_batched_equals_scalar(self):
        musa = Musa(get_app("lulesh"))
        tr = musa._burst_trace(8, 1)
        rank_scales = musa.app.rank_scales(8)
        base = {id(p): 1000.0 * (i + 1)
                for i, p in enumerate(musa.phases)}
        cfg = np.array([1.0, 0.5, 2.0, 1.0 + 2**-35, 3.7])

        def dur(rank, ph):
            return base[id(ph)] * cfg * rank_scales[rank]

        for n_buses in (0, 4):
            net = NetworkConfig(
                latency_us=musa.network.latency_us,
                bandwidth_gbs=musa.network.bandwidth_gbs,
                cpu_overhead_us=musa.network.cpu_overhead_us,
                n_buses=n_buses)
            out = replay_batch(tr, net, dur, len(cfg))
            for c in range(len(cfg)):
                ref = replay(tr, net,
                             lambda r, p, _c=c: dur(r, p)[_c])
                assert_results_equal(ref, out[c])
