"""Tests for collective cost models."""

import math

import pytest

from repro.network import collective_cost_ns, marenostrum4_network


@pytest.fixture
def net():
    return marenostrum4_network()


class TestCollectiveCosts:
    def test_single_rank_trivial(self, net):
        assert collective_cost_ns("allreduce", 1, 8, net) == pytest.approx(
            net.overhead_ns)

    def test_logarithmic_scaling(self, net):
        c16 = collective_cost_ns("allreduce", 16, 8, net)
        c256 = collective_cost_ns("allreduce", 256, 8, net)
        assert c256 / c16 == pytest.approx(math.log2(256) / math.log2(16),
                                           rel=0.01)

    def test_barrier_cheaper_than_allreduce_with_payload(self, net):
        b = collective_cost_ns("barrier", 256, 0, net)
        a = collective_cost_ns("allreduce", 256, 1 << 20, net)
        assert b < a

    def test_payload_increases_cost(self, net):
        small = collective_cost_ns("bcast", 64, 8, net)
        big = collective_cost_ns("bcast", 64, 1 << 20, net)
        assert big > small

    def test_alltoall_scales_linearly_in_ranks(self, net):
        c64 = collective_cost_ns("alltoall", 64, 64 * 1024, net)
        c128 = collective_cost_ns("alltoall", 128, 128 * 1024, net)
        assert c128 > c64 * 1.5

    def test_reduce_equals_bcast(self, net):
        assert collective_cost_ns("reduce", 64, 1024, net) == pytest.approx(
            collective_cost_ns("bcast", 64, 1024, net))

    def test_unknown_kind_raises(self, net):
        with pytest.raises(ValueError, match="unknown collective"):
            collective_cost_ns("scan", 64, 8, net)

    def test_rejects_bad_args(self, net):
        with pytest.raises(ValueError):
            collective_cost_ns("allreduce", 0, 8, net)
        with pytest.raises(ValueError):
            collective_cost_ns("allreduce", 4, -1, net)
