"""Tests for Dimemas-style network config files."""

import pytest

from repro.network import (
    NetworkConfig,
    load_network_cfg,
    marenostrum4_network,
    save_network_cfg,
)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "mn4.cfg"
        net = marenostrum4_network()
        save_network_cfg(net, path, comment="MareNostrum IV")
        back = load_network_cfg(path)
        assert back == net

    def test_comment_written(self, tmp_path):
        path = tmp_path / "x.cfg"
        save_network_cfg(marenostrum4_network(), path, comment="hello")
        assert path.read_text().startswith("# hello")


class TestParsing:
    def test_minimal_file(self, tmp_path):
        path = tmp_path / "min.cfg"
        path.write_text("latency_us = 2.0\nbandwidth_gbs = 25\n"
                        "cpu_overhead_us = 0.1\n")
        net = load_network_cfg(path)
        assert net.latency_us == 2.0
        assert net.bandwidth_gbs == 25.0
        assert net.n_buses == 0  # default

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.cfg"
        path.write_text(
            "# machine\n\nlatency_us = 1.0  # one microsecond\n"
            "bandwidth_gbs = 10\ncpu_overhead_us = 0.2\n")
        assert load_network_cfg(path).latency_us == 1.0

    def test_unknown_key(self, tmp_path):
        path = tmp_path / "bad.cfg"
        path.write_text("latencyy_us = 1.0\n")
        with pytest.raises(ValueError, match="unknown key"):
            load_network_cfg(path)

    def test_duplicate_key(self, tmp_path):
        path = tmp_path / "dup.cfg"
        path.write_text("latency_us = 1\nlatency_us = 2\n"
                        "bandwidth_gbs = 1\ncpu_overhead_us = 0\n")
        with pytest.raises(ValueError, match="duplicate"):
            load_network_cfg(path)

    def test_missing_required(self, tmp_path):
        path = tmp_path / "m.cfg"
        path.write_text("latency_us = 1.0\n")
        with pytest.raises(ValueError, match="missing required"):
            load_network_cfg(path)

    def test_bad_value(self, tmp_path):
        path = tmp_path / "v.cfg"
        path.write_text("latency_us = fast\nbandwidth_gbs = 1\n"
                        "cpu_overhead_us = 0\n")
        with pytest.raises(ValueError, match="bad value"):
            load_network_cfg(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "l.cfg"
        path.write_text("latency_us 1.0\n")
        with pytest.raises(ValueError, match="expected"):
            load_network_cfg(path)
