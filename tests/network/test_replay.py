"""Tests for the Dimemas-style MPI replay engine."""

import numpy as np
import pytest

from repro.network import NetworkConfig, marenostrum4_network, replay
from repro.trace import BurstTrace, ComputePhase, MpiCall, RankTrace, TaskRecord


def phase(duration=100.0, phase_id=0):
    return ComputePhase(phase_id=phase_id, tasks=(
        TaskRecord(kernel="k", duration_ns=duration),))


def const_duration(value):
    return lambda rank, ph: value


def trace(rank_events, app="t"):
    ranks = tuple(RankTrace(rank=r, events=tuple(evs))
                  for r, evs in enumerate(rank_events))
    return BurstTrace(app=app, ranks=ranks)


@pytest.fixture
def net():
    return marenostrum4_network()


@pytest.fixture
def fast_net():
    # Negligible latency/overhead for exact-arithmetic tests.
    return NetworkConfig(latency_us=0.0001, bandwidth_gbs=1000.0,
                        cpu_overhead_us=0.0001)


class TestComputeOnly:
    def test_single_rank(self, net):
        t = trace([[phase(), phase(phase_id=1)]])
        res = replay(t, net, const_duration(50.0))
        assert res.total_ns == pytest.approx(100.0)
        assert res.compute_ns[0] == pytest.approx(100.0)

    def test_per_rank_durations(self, net):
        t = trace([[phase()], [phase()]])
        res = replay(t, net, lambda r, p: 100.0 * (r + 1))
        assert res.total_ns == pytest.approx(200.0)


class TestPointToPoint:
    def test_eager_send_recv(self, net):
        t = trace([
            [MpiCall(kind="send", peer=1, size_bytes=1024)],
            [MpiCall(kind="recv", peer=0, size_bytes=1024)],
        ])
        res = replay(t, net, const_duration(0.0))
        assert res.n_messages == 1
        assert res.bytes_sent == 1024
        assert res.total_ns >= net.transfer_ns(1024)

    def test_rendezvous_send_blocks_for_receiver(self, net):
        big = 10 * 1024 * 1024  # above eager threshold
        t = trace([
            [MpiCall(kind="send", peer=1, size_bytes=big)],
            [phase(), MpiCall(kind="recv", peer=0, size_bytes=big)],
        ])
        res = replay(t, net, const_duration(5000.0))
        # Sender released only once receiver posted (after its phase).
        assert res.p2p_ns[0] >= 5000.0 - 1e-6

    def test_recv_before_send_blocks(self, net):
        t = trace([
            [phase(), MpiCall(kind="send", peer=1, size_bytes=8)],
            [MpiCall(kind="recv", peer=0, size_bytes=8)],
        ])
        res = replay(t, net, const_duration(1000.0))
        assert res.total_ns >= 1000.0

    def test_isend_irecv_wait(self, net):
        t = trace([
            [MpiCall(kind="isend", peer=1, size_bytes=64, request=0),
             phase(), MpiCall(kind="wait", request=0)],
            [MpiCall(kind="irecv", peer=0, size_bytes=64, request=0),
             phase(), MpiCall(kind="wait", request=0)],
        ])
        res = replay(t, net, const_duration(10.0))
        assert res.n_messages == 1
        assert res.total_ns > 0

    def test_message_order_fifo_per_channel(self, fast_net):
        # Two sends same (src, dst, tag) must match two recvs in order;
        # replay completes without deadlock and counts both.
        t = trace([
            [MpiCall(kind="send", peer=1, size_bytes=100),
             MpiCall(kind="send", peer=1, size_bytes=200)],
            [MpiCall(kind="recv", peer=0, size_bytes=100),
             MpiCall(kind="recv", peer=0, size_bytes=200)],
        ])
        res = replay(t, fast_net, const_duration(0.0))
        assert res.n_messages == 2
        assert res.bytes_sent == 300

    def test_injection_link_serializes(self, fast_net):
        # Rank 0 sends 4 big messages to distinct peers: they serialize
        # on its outgoing link, so total >= 4 * transfer.
        net = NetworkConfig(latency_us=0.0001, bandwidth_gbs=1.0,
                            cpu_overhead_us=0.0001)
        size = 1024 * 1024
        sends = [MpiCall(kind="isend", peer=p, size_bytes=size, request=p)
                 for p in (1, 2, 3, 4)]
        waits = [MpiCall(kind="wait", request=p) for p in (1, 2, 3, 4)]
        receivers = [[MpiCall(kind="recv", peer=0, size_bytes=size)]
                     for _ in range(4)]
        t = trace([sends + waits] + receivers)
        res = replay(t, net, const_duration(0.0))
        assert res.total_ns >= 4 * size / 1.0  # 4 serialized transfers


class TestCollectives:
    def test_barrier_synchronizes(self, net):
        t = trace([
            [phase(), MpiCall(kind="barrier")],
            [MpiCall(kind="barrier")],
        ])
        res = replay(t, net, lambda r, p: 10_000.0)
        # Rank 1 waits for rank 0's compute inside the barrier.
        assert res.collective_ns[1] >= 10_000.0 - 1e-6

    def test_imbalance_becomes_collective_wait(self, net):
        t = trace([
            [phase(), MpiCall(kind="allreduce", size_bytes=8)],
            [phase(), MpiCall(kind="allreduce", size_bytes=8)],
            [phase(), MpiCall(kind="allreduce", size_bytes=8)],
        ])
        res = replay(t, net, lambda r, p: 1000.0 * (1 + 10 * (r == 2)))
        # Fast ranks idle ~9000 ns in the allreduce.
        assert res.collective_ns[0] >= 9000.0
        assert res.collective_ns[2] < res.collective_ns[0]

    def test_multiple_collectives_sequence(self, net):
        evs = [MpiCall(kind="allreduce", size_bytes=8),
               MpiCall(kind="barrier"),
               MpiCall(kind="allreduce", size_bytes=8)]
        t = trace([list(evs), list(evs)])
        res = replay(t, net, const_duration(0.0))
        assert res.total_ns > 0


class TestDeadlockDetection:
    def test_unmatched_recv_deadlocks(self, net):
        t = trace([
            [MpiCall(kind="recv", peer=1, size_bytes=8)],
            [],
        ])
        with pytest.raises(RuntimeError, match="deadlock"):
            replay(t, net, const_duration(0.0))

    def test_collective_mismatch_deadlocks(self, net):
        t = trace([
            [MpiCall(kind="barrier")],
            [],
        ])
        with pytest.raises(RuntimeError, match="deadlock"):
            replay(t, net, const_duration(0.0))


class TestSegments:
    def test_segments_collected(self, net):
        t = trace([
            [phase(), MpiCall(kind="barrier")],
            [phase(), MpiCall(kind="barrier")],
        ])
        res = replay(t, net, const_duration(100.0), collect_segments=True)
        kinds = {s.kind for s in res.segments}
        assert "compute" in kinds
        assert "collective" in kinds

    def test_segments_off_by_default(self, net):
        t = trace([[phase()]])
        assert replay(t, net, const_duration(1.0)).segments is None


class TestAggregateAccounting:
    def test_mpi_fraction_bounds(self, net):
        t = trace([
            [phase(), MpiCall(kind="barrier")],
            [phase(), MpiCall(kind="barrier")],
        ])
        res = replay(t, net, lambda r, p: 100.0 + 900.0 * r)
        assert 0.0 < res.mpi_fraction < 1.0

    def test_application_skeleton_replays(self, net):
        """A real app-model trace (halos + allreduce) replays cleanly."""
        from repro.apps import get_app

        from repro.apps import grid_neighbors, rank_grid_dims

        t = get_app("lulesh").burst_trace(n_ranks=8, n_iterations=2)
        res = replay(t, net, const_duration(10_000.0))
        assert res.n_ranks == 8
        # In a 2x2x2 periodic grid +1/-1 neighbours coincide: 3 per rank.
        n_nb = len(grid_neighbors(0, rank_grid_dims(8)))
        assert res.n_messages == 8 * n_nb * 3 * 2  # ranks x nbrs x phases x iters
        assert res.total_ns > 0


class TestFiniteBuses:
    def test_bus_pool_serializes_global_transfers(self):
        """With one bus, disjoint pairs' transfers serialize."""
        slow = NetworkConfig(latency_us=0.0001, bandwidth_gbs=1.0,
                             cpu_overhead_us=0.0001, n_buses=1)
        size = 1024 * 1024
        t = trace([
            [MpiCall(kind="isend", peer=2, size_bytes=size, request=0),
             MpiCall(kind="wait", request=0)],
            [MpiCall(kind="isend", peer=3, size_bytes=size, request=0),
             MpiCall(kind="wait", request=0)],
            [MpiCall(kind="recv", peer=0, size_bytes=size)],
            [MpiCall(kind="recv", peer=1, size_bytes=size)],
        ])
        res1 = replay(t, slow, const_duration(0.0))
        free = NetworkConfig(latency_us=0.0001, bandwidth_gbs=1.0,
                             cpu_overhead_us=0.0001, n_buses=0)
        res_inf = replay(t, free, const_duration(0.0))
        assert res1.total_ns > res_inf.total_ns * 1.7

    def test_many_buses_equal_unlimited(self):
        busy = NetworkConfig(latency_us=1.0, bandwidth_gbs=10.0,
                             cpu_overhead_us=0.1, n_buses=1000)
        free = NetworkConfig(latency_us=1.0, bandwidth_gbs=10.0,
                             cpu_overhead_us=0.1, n_buses=0)
        from repro.apps import get_app

        t = get_app("hydro").burst_trace(n_ranks=8, n_iterations=1)
        a = replay(t, busy, const_duration(1000.0)).total_ns
        b = replay(t, free, const_duration(1000.0)).total_ns
        assert a == pytest.approx(b, rel=1e-9)
