"""Tests for the Dimemas-style network model."""

import pytest

from repro.network import NetworkConfig, marenostrum4_network


class TestNetworkConfig:
    def test_transfer_time(self):
        net = NetworkConfig(latency_us=1.0, bandwidth_gbs=10.0,
                            cpu_overhead_us=0.5)
        # 1 us latency + 10 KB / 10 GB/s = 1000 + 1024 ns
        assert net.transfer_ns(10 * 1024) == pytest.approx(2024.0)

    def test_zero_size_is_latency_only(self):
        net = marenostrum4_network()
        assert net.transfer_ns(0) == pytest.approx(net.latency_us * 1e3)

    def test_eager_threshold(self):
        net = marenostrum4_network()
        assert net.is_eager(1024)
        assert not net.is_eager(10 * 1024 * 1024)

    def test_marenostrum_parameters(self):
        net = marenostrum4_network()
        # 100 Gb/s Omni-Path class link, ~1 us MPI latency.
        assert net.bandwidth_gbs == pytest.approx(12.5)
        assert net.latency_us == pytest.approx(1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            NetworkConfig(latency_us=-1, bandwidth_gbs=1, cpu_overhead_us=0)
        with pytest.raises(ValueError):
            NetworkConfig(latency_us=1, bandwidth_gbs=0, cpu_overhead_us=0)
        net = marenostrum4_network()
        with pytest.raises(ValueError):
            net.transfer_ns(-1)
