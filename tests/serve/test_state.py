"""Serve-state contracts: store-backed answers, singleflight,
bit-identity.

The acceptance bar for the serve layer (PR 8):

* a repeated query is served entirely from the store — **zero** engine
  counters move on the second request;
* store-assembled responses are bit-identical to a direct
  :func:`run_sweep` of the same inputs;
* N concurrent identical queries produce exactly one engine evaluation
  and one set of store entries (singleflight), verified via counters.
"""

import threading

import pytest

from repro.analysis.optimize import Constraints, optimize_node
from repro.config import smoke_design_space
from repro.core import ResultSet, run_sweep
from repro.core.canon import canonical_dumps
from repro.core.store import ResultStore
from repro.serve import QueryError, ServeState
from repro.obs import MetricsRegistry, set_metrics

#: Counters that prove the engine ran: one fires per simulated node,
#: the other per phase-column simulation (both modes).
ENGINE_COUNTERS = ("musa.simulate_node", "phase_sim.calls")

SMOKE_QUERY = {"kind": "sweep", "apps": ["spmz"], "space": "smoke"}
N_SMOKE = 8


@pytest.fixture
def fresh_metrics():
    reg = MetricsRegistry()
    prev = set_metrics(reg)
    try:
        yield reg
    finally:
        set_metrics(prev)


@pytest.fixture
def state(tmp_path, fresh_metrics):
    store = ResultStore(tmp_path / "store.jsonl")
    yield ServeState(store, code_version="testver")
    store.close()


class TestStoreBackedSweep:
    def test_cold_query_evaluates_and_fills_store(self, state,
                                                  fresh_metrics):
        response = state.handle(SMOKE_QUERY)
        assert response["ok"]
        assert response["served"]["evaluated"] == N_SMOKE
        assert response["served"]["store_hits"] == 0
        assert len(state.store) == N_SMOKE
        assert fresh_metrics.counter("store.put") == N_SMOKE

    def test_repeat_query_never_touches_engine(self, state, fresh_metrics):
        state.handle(SMOKE_QUERY)
        before = {c: fresh_metrics.counter(c) for c in ENGINE_COUNTERS}
        assert all(v > 0 for v in before.values())  # cold run did work
        response = state.handle(SMOKE_QUERY)
        assert response["served"] == {
            "store_hits": N_SMOKE, "evaluated": 0, "points": N_SMOKE,
            "code_version": "testver"}
        for c in ENGINE_COUNTERS:
            assert fresh_metrics.counter(c) == before[c], \
                f"engine counter {c} moved on a store-hit query"
        assert fresh_metrics.counter("store.hit") == N_SMOKE

    def test_store_hit_bit_identical_to_run_sweep(self, state):
        cold = state.handle(SMOKE_QUERY)
        warm = state.handle(SMOKE_QUERY)
        direct = run_sweep(["spmz"], smoke_design_space(), processes=1)
        assert ResultSet(warm["result"]["records"]) == direct
        assert canonical_dumps(warm["result"]) == \
            canonical_dumps(cold["result"])

    def test_partial_hit_evaluates_only_missing_points(self, state):
        state.handle({"kind": "sweep", "apps": ["spmz"], "space": "smoke",
                      "subset": {"vector": 128}})
        response = state.handle(SMOKE_QUERY)
        # Half the smoke space (vector=128) was already stored.
        assert response["served"]["store_hits"] == N_SMOKE // 2
        assert response["served"]["evaluated"] == N_SMOKE // 2
        direct = run_sweep(["spmz"], smoke_design_space(), processes=1)
        assert ResultSet(response["result"]["records"]) == direct

    def test_mode_and_ranks_are_keyed_separately(self, state):
        state.handle(SMOKE_QUERY)
        response = state.handle(dict(SMOKE_QUERY, ranks=128))
        assert response["served"]["evaluated"] == N_SMOKE

    def test_store_persists_across_states(self, tmp_path, fresh_metrics):
        path = tmp_path / "persist.jsonl"
        with ResultStore(path) as store:
            ServeState(store, code_version="v").handle(SMOKE_QUERY)
        with ResultStore(path) as store:
            fresh = ServeState(store, code_version="v")
            response = fresh.handle(SMOKE_QUERY)
        assert response["served"]["evaluated"] == 0
        assert response["served"]["store_hits"] == N_SMOKE


class TestSingleflight:
    def test_concurrent_identical_queries_one_evaluation(
            self, state, fresh_metrics):
        n_clients = 6
        barrier = threading.Barrier(n_clients)
        responses = [None] * n_clients
        errors = []

        def client(i):
            try:
                barrier.wait()
                responses[i] = state.handle(dict(SMOKE_QUERY))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Exactly one engine evaluation of the 8 points, one store
        # entry per point, and every follower coalesced.
        assert fresh_metrics.counter("musa.simulate_node") == N_SMOKE
        assert fresh_metrics.counter("store.put") == N_SMOKE
        assert len(state.store) == N_SMOKE
        assert fresh_metrics.counter("serve.singleflight.coalesced") == \
            n_clients - 1
        payloads = {canonical_dumps(r["result"]) for r in responses}
        assert len(payloads) == 1

    def test_sequential_queries_do_not_coalesce(self, state, fresh_metrics):
        state.handle(SMOKE_QUERY)
        state.handle(SMOKE_QUERY)
        assert fresh_metrics.counter("serve.singleflight.coalesced") == 0


class TestBestQuery:
    def test_matches_direct_optimizer(self, state):
        response = state.handle({
            "kind": "best", "apps": ["spmz"], "space": "smoke",
            "objective": "time_ns", "power_cap_w": 500.0})
        direct = optimize_node(
            run_sweep(["spmz"], smoke_design_space(), processes=1),
            objective="time_ns",
            constraints=Constraints(power_cap_w=500.0), apps=["spmz"])
        got = response["result"]
        assert got["config"] == direct.config
        assert got["score"] == direct.score
        assert got["n_feasible"] == direct.n_feasible

    def test_energy_cap_filters_candidates(self, state):
        unconstrained = state.handle({
            "kind": "best", "apps": ["spmz"], "space": "smoke",
            "objective": "time_ns"})
        energies = [r["energy_j"] for r in
                    state.handle(SMOKE_QUERY)["result"]["records"]]
        cap = sorted(e for e in energies if e is not None)[3]
        capped = state.handle({
            "kind": "best", "apps": ["spmz"], "space": "smoke",
            "objective": "time_ns", "energy_cap_j": cap})
        assert capped["result"]["n_feasible"] <= \
            unconstrained["result"]["n_feasible"]

    def test_infeasible_constraints_are_a_query_error(self, state):
        with pytest.raises(QueryError):
            state.handle({"kind": "best", "apps": ["spmz"],
                          "space": "smoke", "power_cap_w": 1e-3})


class TestDeltaQuery:
    def test_pairs_and_geomean(self, state):
        response = state.handle({
            "kind": "delta", "apps": ["spmz"], "space": "smoke",
            "axis": "vector", "a": 128, "b": 512})
        result = response["result"]
        # Smoke space: 8 configs, vector axis has 2 values -> 4 pairs.
        assert len(result["pairs"]) == 4
        for pair in result["pairs"]:
            assert "vector" not in pair["config"]
            assert pair["speedup_b_over_a"] > 0
        assert response["served"]["points"] == N_SMOKE
        geo = result["geomean_speedup_by_app"]["spmz"]
        # Wider vectors never slow these kernels down.
        assert geo >= 1.0

    def test_delta_reuses_sweep_store_entries(self, state):
        state.handle(SMOKE_QUERY)
        response = state.handle({
            "kind": "delta", "apps": ["spmz"], "space": "smoke",
            "axis": "vector", "a": 128, "b": 512})
        assert response["served"]["evaluated"] == 0
        assert response["served"]["store_hits"] == N_SMOKE


class TestInvalidation:
    def test_invalidate_app_forces_reevaluation(self, state,
                                                fresh_metrics):
        state.handle(SMOKE_QUERY)
        assert state.invalidate({"app": "spmz"}) == N_SMOKE
        response = state.handle(SMOKE_QUERY)
        assert response["served"]["evaluated"] == N_SMOKE
        assert fresh_metrics.counter("store.invalidated") == N_SMOKE

    def test_invalidate_stale_keeps_current_version(self, tmp_path,
                                                    fresh_metrics):
        store = ResultStore(tmp_path / "s.jsonl")
        old = ServeState(store, code_version="old")
        old.handle(SMOKE_QUERY)
        cur = ServeState(store, code_version="cur")
        cur.handle(SMOKE_QUERY)
        assert cur.invalidate({"stale": True}) == N_SMOKE
        assert cur.handle(SMOKE_QUERY)["served"]["evaluated"] == 0
        store.close()

    def test_invalidate_rejects_unknown_fields(self, state):
        with pytest.raises(QueryError):
            state.invalidate({"frequency": 2.0})
        with pytest.raises(QueryError):
            state.invalidate({})


class TestQueryValidation:
    @pytest.mark.parametrize("query", [
        {"kind": "nope"},
        {},
        {"kind": "sweep", "apps": ["nonesuch"]},
        {"kind": "sweep", "mode": "turbo"},
        {"kind": "sweep", "space": "galaxy"},
        {"kind": "sweep", "subset": {"warp": 9}},
        {"kind": "sweep", "space": "smoke", "subset": {"vector": 1024}},
        {"kind": "delta", "axis": "warp", "a": 1, "b": 2},
        {"kind": "delta", "axis": "vector"},
        {"kind": "delta", "axis": "vector", "a": 128, "b": 512,
         "subset": {"vector": 128}},
    ])
    def test_malformed_queries_rejected(self, state, query):
        with pytest.raises(QueryError):
            state.handle(query)

    def test_normalization_coalesces_default_spellings(self, state,
                                                       fresh_metrics):
        state.handle({"kind": "sweep", "apps": ["spmz"], "space": "smoke"})
        response = state.handle({"kind": "sweep", "apps": ["spmz"],
                                 "space": "smoke", "mode": "fast",
                                 "ranks": 256, "subset": {}})
        # Same normalized query -> same store keys -> pure hits.
        assert response["served"]["evaluated"] == 0
