"""HTTP layer: endpoints, canonical responses, error mapping.

Starts the real asyncio server on an ephemeral port (in a background
thread) and talks to it with the stdlib client — the same path the CI
smoke job exercises.
"""

import asyncio
import json
import threading

import pytest

from repro.core.canon import canonical_dumps
from repro.core.store import ResultStore
from repro.serve import ReproServer, ServeClient, ServeState
from repro.obs import MetricsRegistry, set_metrics

SMOKE_QUERY = {"kind": "sweep", "apps": ["spmz"], "space": "smoke"}


@pytest.fixture
def server(tmp_path):
    reg = MetricsRegistry()
    prev = set_metrics(reg)
    store = ResultStore(tmp_path / "store.jsonl")
    state = ServeState(store, code_version="httptest")
    srv = ReproServer(state, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    stop = None

    def run():
        nonlocal stop
        asyncio.set_event_loop(loop)

        async def main():
            nonlocal stop
            stop = asyncio.Event()
            await srv.start()
            started.set()
            await stop.wait()
            await srv.close()

        loop.run_until_complete(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10)
    try:
        yield srv, reg
    finally:
        loop.call_soon_threadsafe(stop.set)
        thread.join(timeout=10)
        loop.close()
        store.close()
        set_metrics(prev)


def test_health_and_metrics(server):
    srv, _ = server
    client = ServeClient(port=srv.port)
    health = client.health()
    assert health["ok"] and health["code_version"] == "httptest"
    assert health["store_entries"] == 0
    client.query(SMOKE_QUERY)
    assert client.health()["store_entries"] == 8
    derived = client.metrics()["derived"]
    assert derived["serve_requests"] == 1
    assert derived["store_puts"] == 8


def test_second_query_is_store_hit_and_byte_identical(server):
    srv, reg = server
    client = ServeClient(port=srv.port)
    status1, body1 = client.raw_query(SMOKE_QUERY)
    status2, body2 = client.raw_query(SMOKE_QUERY)
    assert status1 == status2 == 200
    parsed1, parsed2 = json.loads(body1), json.loads(body2)
    assert parsed2["served"]["evaluated"] == 0
    assert parsed2["served"]["store_hits"] == 8
    # The result payload is canonical JSON: byte-identical across
    # servings (the served-accounting block legitimately differs).
    assert canonical_dumps(parsed1["result"]) == \
        canonical_dumps(parsed2["result"])
    status3, body3 = client.raw_query(SMOKE_QUERY)
    assert body3 == body2  # warm-vs-warm: the whole response matches


def test_bad_query_maps_to_400(server):
    srv, _ = server
    client = ServeClient(port=srv.port)
    status, body = client.raw_query({"kind": "nope"})
    assert status == 400
    assert not json.loads(body)["ok"]
    with pytest.raises(RuntimeError):
        client.query({"kind": "nope"})


def test_unknown_route_404_and_method_405(server):
    srv, _ = server
    client = ServeClient(port=srv.port)
    status, _ = client._request("GET", "/nonesuch")
    assert status == 404
    status, _ = client._request("GET", "/query")
    assert status == 405


def test_invalidate_endpoint(server):
    srv, _ = server
    client = ServeClient(port=srv.port)
    client.query(SMOKE_QUERY)
    assert client.invalidate({"app": "spmz"}) == 8
    assert client.health()["store_entries"] == 0
    response = client.query(SMOKE_QUERY)
    assert response["served"]["evaluated"] == 8
    with pytest.raises(RuntimeError):
        client.invalidate({"bogus": 1})


def test_malformed_body_is_400(server):
    srv, _ = server
    import http.client
    conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30)
    try:
        conn.request("POST", "/query", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
    finally:
        conn.close()
