"""Shared fixtures for the test suite."""

import pytest

from repro.config import baseline_node
from repro.trace import InstructionMix, KernelSignature, ReuseProfile


@pytest.fixture(scope="session")
def node32():
    """Baseline 32-core node (Fig. 1 characterization config)."""
    return baseline_node(n_cores=32)


@pytest.fixture(scope="session")
def node64():
    """Baseline 64-core node."""
    return baseline_node(n_cores=64)


@pytest.fixture
def simple_reuse():
    """A three-component reuse profile: L1-resident, L2-resident, DRAM."""
    return ReuseProfile.from_components(
        [(8.0, 0.90), (2000.0, 0.07), (1.0e6, 0.03)], cold_fraction=0.002,
    )


@pytest.fixture
def simple_kernel(simple_reuse):
    """A generic balanced kernel signature."""
    return KernelSignature(
        name="k",
        instr_per_unit=100_000.0,
        mix=InstructionMix(fp=0.30, int_alu=0.20, load=0.25, store=0.10,
                           branch=0.10, other=0.05),
        ilp=3.0,
        vec_fraction=0.7,
        trip_count=256,
        mlp=6.0,
        reuse=simple_reuse,
        row_hit_rate=0.6,
    )
