"""Table I: the architectural parameter space (864 configurations).

Regenerates the table's contents from the config layer and benchmarks
design-space enumeration.
"""

from conftest import write_figure

from repro.analysis import format_rows
from repro.config import (
    CACHE_LABELS,
    CORE_LABELS,
    MEMORY_LABELS,
    cache_preset,
    core_preset,
    full_design_space,
    memory_preset,
)


def render_table1() -> str:
    sections = []
    cache_rows = []
    for label in CACHE_LABELS:
        h = cache_preset(label)
        cache_rows.append([
            label,
            f"{h.l3.size_bytes >> 20}MB/{h.l3.associativity}/{h.l3.latency_cycles}",
            f"{h.l2.size_bytes >> 10}kB/{h.l2.associativity}/{h.l2.latency_cycles}",
        ])
    sections.append(format_rows(
        "Table I (caches): size / associativity / latency",
        ["label", "L3", "L2"], cache_rows))

    core_rows = []
    for label in CORE_LABELS:
        c = core_preset(label)
        core_rows.append([label, c.rob_size, c.issue_width, c.store_buffer,
                          f"{c.n_alu}/{c.n_fpu}",
                          f"{c.irf_size}/{c.frf_size}"])
    sections.append(format_rows(
        "Table I (cores): OoO structures",
        ["label", "ROB", "issue", "store buf", "ALU/FPU", "IRF/FRF"],
        core_rows))

    space = full_design_space()
    other_rows = [
        ["Frequency [GHz]", ", ".join(map(str, space.frequencies))],
        ["Vector width [bits]", ", ".join(map(str, space.vector_widths))],
        ["Memory", ", ".join(MEMORY_LABELS)],
        ["Number of cores", ", ".join(map(str, space.core_counts))],
        ["TOTAL CONFIGURATIONS", str(len(space))],
    ]
    sections.append(format_rows("Table I (other parameters)",
                                ["parameter", "values"], other_rows))
    return "\n\n".join(sections)


def test_table1_space(benchmark, output_dir):
    space = full_design_space()

    def enumerate_space():
        return sum(1 for _ in space)

    count = benchmark(enumerate_space)
    assert count == 864
    # Memory preset sanity for the table footer.
    assert memory_preset("8chDDR4").total_dimms == 16
    write_figure(output_dir, "table1_space.txt", render_table1())
