"""Ablation studies for the design decisions called out in DESIGN.md.

Each ablation disables one modelling mechanism and shows that a paper
shape disappears — evidence the mechanism is load-bearing rather than
decorative.
"""

import dataclasses

import numpy as np
import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import get_app
from repro.config import KIB, LINE_BYTES, CacheLevelConfig, baseline_node
from repro.core import Musa
from repro.trace import profile_stream
from repro.trace.streams import random_uniform, sequential_sweep
from repro.uarch import (
    SetAssociativeCache,
    resolve_contention,
    time_kernel,
    vectorize,
)
from repro.uarch.vector import _fusion_at


def test_ablation1_stack_distance_vs_exact(benchmark, output_dir):
    """The sweep's analytic cache model tracks the exact simulator."""
    streams = {
        "sweep-fits": sequential_sweep(ws_bytes=2 * KIB, n_sweeps=8,
                                       elem_bytes=8),
        "sweep-thrashes": sequential_sweep(ws_bytes=64 * KIB, n_sweeps=4,
                                           elem_bytes=8),
        "random-small": random_uniform(ws_bytes=2 * KIB, n_accesses=20_000,
                                       seed=1),
        "random-large": random_uniform(ws_bytes=128 * KIB, n_accesses=30_000,
                                       seed=2),
    }
    cfg = CacheLevelConfig("T", 8 * KIB, 4, 1)

    def analytic_miss_ratio():
        p = profile_stream(streams["random-large"], max_samples=30_000)
        return p.miss_ratio(cfg.n_lines, associativity=cfg.associativity,
                            n_sets=cfg.n_sets)

    benchmark(analytic_miss_ratio)

    rows = []
    errors = []
    for name, stream in streams.items():
        sim = SetAssociativeCache(cfg)
        sim.access_stream(stream // LINE_BYTES)
        exact = sim.stats.miss_ratio
        model = profile_stream(stream, max_samples=len(stream)).miss_ratio(
            cfg.n_lines, associativity=cfg.associativity, n_sets=cfg.n_sets)
        errors.append(abs(model - exact))
        rows.append([name, exact, model, abs(model - exact)])
    assert max(errors) < 0.12
    write_figure(output_dir, "ablation1_cache_model.txt", format_rows(
        "Ablation 1 — analytic stack-distance model vs exact LRU simulator",
        ["stream", "exact miss ratio", "model miss ratio", "abs error"],
        rows))


def test_ablation2_mlp_term(benchmark, output_dir):
    """Removing the MLP limit collapses Specfem3D's OoO sensitivity."""
    node = baseline_node(64)
    spec = get_app("spec3d").detailed_trace()["element_kernel"]
    spec_nomlp = dataclasses.replace(spec, mlp=1e6, row_hit_rate=1.0)

    def ratio(sig):
        lo = time_kernel(sig, node.with_(core="lowend")).cycles
        ag = time_kernel(sig, node.with_(core="aggressive")).cycles
        return ag / lo

    with_mlp = benchmark(ratio, spec)
    without = ratio(spec_nomlp)
    # The MLP term deepens the gap on top of the window-exposure effect
    # (which stems from the same ROB mechanism and stays active here).
    assert with_mlp < without - 0.015
    write_figure(output_dir, "ablation2_mlp.txt", format_rows(
        "Ablation 2 — Specfem3D lowend/aggressive ratio",
        ["model", "ratio (lower = more OoO-sensitive)"],
        [["ROB/MSHR-limited MLP (paper shape)", with_mlp],
         ["unlimited MLP (ablated)", without]]))


def test_ablation3_trip_count_gate(benchmark, output_dir):
    """Without the repetition gate, LULESH spuriously gains from 512-bit."""
    lulesh = get_app("lulesh").detailed_trace()["stress"]
    gated = benchmark(lambda: vectorize(lulesh, 512).instr_scale)
    # Ungated: fuse at the full 8 lanes regardless of trip count.
    r_ungated = _fusion_at(max(lulesh.trip_count, 16), 8)
    m = lulesh.mix
    vf = lulesh.vec_fraction
    scale_ungated = ((m.fp + m.mem) * ((1 - vf) + vf / r_ungated)
                     + m.int_alu + m.branch + m.other)
    assert gated > scale_ungated + 0.03  # gate keeps LULESH flat
    write_figure(output_dir, "ablation3_trip_gate.txt", format_rows(
        "Ablation 3 — LULESH 512-bit instruction scale",
        ["model", "instr scale (lower = spurious speedup)"],
        [["trip-count gated (paper shape: flat)", gated],
         ["ungated fusion (ablated)", scale_ungated]]))


def test_ablation4_wallclock_runtime_overheads(benchmark, output_dir):
    """Scaling runtime-event costs with frequency removes HYDRO's 3 GHz
    plateau (Sec. V-B5)."""
    from repro.runtime import simulate_phase

    musa = Musa(get_app("hydro"))
    phase = musa.app.representative_phase()
    detailed = musa.detailed

    def makespan(freq, overheads_wallclock):
        node = baseline_node(64).with_(frequency_ghz=freq)
        timing = time_kernel(detailed["godunov"], node, l3_share_cores=64)
        durations = [timing.duration_ns * t.work_units for t in phase.tasks]
        scale = 1.0 if overheads_wallclock else 2.0 / freq
        return simulate_phase(phase, 64, task_durations_ns=durations,
                              overhead_scale=scale).makespan_ns

    paper_gain = benchmark.pedantic(
        lambda: makespan(2.5, True) / makespan(3.0, True),
        rounds=3, iterations=1)
    ablated_gain = makespan(2.5, False) / makespan(3.0, False)
    assert paper_gain < ablated_gain - 0.02  # plateau only with wall-clock
    write_figure(output_dir, "ablation4_runtime_overheads.txt", format_rows(
        "Ablation 4 — HYDRO 2.5 -> 3.0 GHz speedup",
        ["model", "speedup"],
        [["wall-clock runtime events (paper shape: plateau)", paper_gain],
         ["frequency-scaled runtime events (ablated)", ablated_gain]]))


def test_ablation5_bandwidth_queueing(benchmark, output_dir):
    """Without node-level contention, LULESH's 8-channel benefit vanishes."""
    node4 = baseline_node(64)
    node8 = node4.with_(memory="8chDDR4")
    sig = get_app("lulesh").detailed_trace()["stress"]

    def duration(node, contended):
        t = time_kernel(sig, node, l3_share_cores=50)
        if contended:
            t = resolve_contention(t, 50, node.memory).timing
        return t.duration_ns

    with_model = benchmark(
        lambda: duration(node4, True) / duration(node8, True))
    without = duration(node4, False) / duration(node8, False)
    assert with_model > 1.2
    assert abs(without - 1.0) < 0.02
    write_figure(output_dir, "ablation5_bandwidth.txt", format_rows(
        "Ablation 5 — LULESH per-task 8ch/4ch speedup",
        ["model", "speedup"],
        [["bandwidth contention fixed point (paper shape)", with_model],
         ["unlimited bandwidth (ablated)", without]]))
