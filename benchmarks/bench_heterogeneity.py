"""Extension study: heterogeneous (big.LITTLE) sockets under equal area.

Sec. II-B motivates leaner cores; the open question is *mixing* them.
For each application's representative phase, compare a homogeneous
64-aggressive-core socket against area-matched mixes of a few big cores
plus many little ones.  The result mirrors the paper's scaling
analysis: only codes with abundant fine-grained parallelism (HYDRO)
can exploit the extra little cores — starved codes (Specfem3D) lose.
"""

import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import APP_NAMES, get_app
from repro.config import baseline_node
from repro.runtime import (
    area_matched_mix,
    simulate_phase,
    simulate_phase_hetero,
)


@pytest.fixture(scope="module")
def hetero_study():
    node = baseline_node(64).with_(core="aggressive")
    rows = []
    for name in APP_NAMES:
        phase = get_app(name).representative_phase()
        homo = simulate_phase(phase, 64)
        row = [name, phase.n_tasks]
        for n_big in (8, 16, 32):
            mix = area_matched_mix(node, n_big=n_big, little_speed=0.6)
            het = simulate_phase_hetero(phase, mix.speeds())
            row.append(f"{homo.makespan_ns / het.makespan_ns:.2f}x "
                       f"({mix.n_cores}c)")
        rows.append(row)
    return rows


def test_big_little_study(benchmark, hetero_study, output_dir):
    node = baseline_node(64).with_(core="aggressive")
    phase = get_app("hydro").representative_phase()
    mix = area_matched_mix(node, n_big=8, little_speed=0.6)
    speeds = mix.speeds()

    benchmark(lambda: simulate_phase_hetero(phase, speeds).makespan_ns)

    by_app = {r[0]: r for r in hetero_study}
    # HYDRO tolerates (or profits from) little cores; Specfem3D loses.
    hydro_8 = float(by_app["hydro"][2].split("x")[0])
    spec_8 = float(by_app["spec3d"][2].split("x")[0])
    assert hydro_8 > 0.95
    assert spec_8 < 0.85
    assert hydro_8 > spec_8

    write_figure(output_dir, "heterogeneity.txt", format_rows(
        "Area-matched big.LITTLE vs 64 aggressive cores "
        "(speedup of the mixed socket; little cores at 0.6x)",
        ["app", "tasks", "8 big + littles", "16 big + littles",
         "32 big + littles"],
        hetero_study))
