"""Figs. 3 and 4: execution timelines.

Fig. 3 — Specfem3D task starvation: few threads busy on a 64-core node.
Fig. 4 — LULESH rank imbalance turning MPI collectives into idle time.

Paraver renders these as pixel timelines; we regenerate the quantitative
content (occupancy / barrier statistics) plus an ASCII rendering.
"""

import pytest
from conftest import write_figure

from repro.analysis import (
    occupancy_stats,
    rank_activity_stats,
    render_core_timeline,
    render_rank_timeline,
)
from repro.apps import get_app
from repro.core import Musa


def test_fig3_specfem_starvation(benchmark, output_dir):
    musa = Musa(get_app("spec3d"))
    phase = musa.app.representative_phase()

    def schedule_with_spans():
        return musa.burst_phase(phase, 64, collect_spans=True)

    result = benchmark(schedule_with_spans)
    stats = occupancy_stats(result)

    # Paper: "most tasks are scheduled only in few of the threads while
    # the rest remain idle".
    assert stats.starved
    assert stats.active_cores < 48

    art = render_core_timeline(result.spans, 64, result.makespan_ns,
                               width=72, max_cores=48)
    text = (
        f"Fig. 3 — Specfem3D representative phase on 64 cores\n"
        f"occupancy: {stats.busy_fraction:.2f}   "
        f"active cores: {stats.active_cores}/64   "
        f"idle-core fraction: {stats.idle_core_fraction:.2f}\n\n" + art
    )
    write_figure(output_dir, "fig3_spec3d_timeline.txt", text)


def test_fig4_lulesh_barriers(benchmark, output_dir):
    musa = Musa(get_app("lulesh"))

    def replay_with_segments():
        return musa.simulate_burst_full(n_cores=64, n_ranks=32,
                                        n_iterations=2,
                                        collect_segments=True)

    res = benchmark.pedantic(replay_with_segments, rounds=2, iterations=1)
    stats = rank_activity_stats(res)

    # Paper: "significant unnecessary time is spent in MPI barriers due
    # to load imbalance in LULESH".
    assert stats.mean_collective_fraction > 0.15

    hydro_stats = rank_activity_stats(
        Musa(get_app("hydro")).simulate_burst_full(
            n_cores=64, n_ranks=32, n_iterations=2))
    assert (hydro_stats.mean_collective_fraction
            < stats.mean_collective_fraction)

    art = render_rank_timeline(res.segments, 32, res.total_ns, width=72,
                               max_ranks=24)
    text = (
        f"Fig. 4 — LULESH full-app replay, 32 ranks x 64 cores\n"
        f"mean collective (barrier-wait) fraction: "
        f"{stats.mean_collective_fraction:.2f}   "
        f"mean p2p fraction: {stats.p2p_fraction.mean():.3f}\n"
        f"(hydro comparison: {hydro_stats.mean_collective_fraction:.2f})\n\n"
        "legend: '#' compute, 'B' collective, '-' p2p, 'w' wait\n\n" + art
    )
    write_figure(output_dir, "fig4_lulesh_timeline.txt", text)
