"""Fig. 8: memory-channel exploration (4 vs 8 DDR4 channels).

Paper shapes: only LULESH profits (up to ~60% at 64 cores — the only
app whose occupied cores saturate four channels); DRAM power roughly
doubles with the extra DIMMs yet node power grows only 10-20%; LULESH
saves ~30% energy with eight channels.
"""

from conftest import write_figure
from figure_common import mean_bar, render_axis_figure

from repro.apps import APP_NAMES
from repro.core import normalize_axis


def test_fig8_memory_channels(benchmark, full_sweep, output_dir):
    bars = benchmark(normalize_axis, full_sweep, "memory", "4chDDR4",
                     "time_ns")

    s = {a: mean_bar(bars, a, 64, "8chDDR4") for a in APP_NAMES}
    assert s["lulesh"] > 1.25                 # paper: up to 1.6
    for a in ("hydro", "spmz", "btmz", "spec3d"):
        assert s[a] < 1.10                    # nobody else profits

    # The 64-core panel beats (or matches) the 32-core one for LULESH:
    # more occupied cores -> more bandwidth demand.
    assert s["lulesh"] >= mean_bar(bars, "lulesh", 32, "8chDDR4") - 0.05

    # DRAM power ~doubles; node power up only modestly.
    mem_p = normalize_axis(full_sweep, "memory", "4chDDR4",
                           "power_memory_w")
    tot_p = normalize_axis(full_sweep, "memory", "4chDDR4",
                           "power_total_w")
    for a in APP_NAMES:
        assert 1.5 < mean_bar(mem_p, a, 64, "8chDDR4") < 2.3
        assert mean_bar(tot_p, a, 64, "8chDDR4") < 1.25

    # LULESH energy savings with 8 channels.
    ebars = normalize_axis(full_sweep, "memory", "4chDDR4", "energy_j")
    assert mean_bar(ebars, "lulesh", 64, "8chDDR4") < 0.85  # paper 0.70

    write_figure(output_dir, "fig8_memory.txt", render_axis_figure(
        full_sweep, "memory", "4chDDR4", ("4chDDR4", "8chDDR4"),
        "Fig. 8 — memory channels (normalized to 4-channel DDR4)"))
