"""Scheduler-policy study: FIFO (Nanos++-style central queue, the
paper's runtime) vs work stealing.

The paper attributes the 64-core starvation to trace-level parallelism;
this extension quantifies how much a smarter scheduling policy could
claw back (answer: almost nothing — the limiter really is the trace,
which is the paper's point)."""

import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import APP_NAMES, get_app
from repro.runtime import simulate_phase, simulate_phase_stealing


@pytest.fixture(scope="module")
def policy_comparison():
    rows = []
    for name in APP_NAMES:
        phase = get_app(name).representative_phase()
        fifo = simulate_phase(phase, 64)
        steal = simulate_phase_stealing(phase, 64)
        rows.append([
            name, phase.n_tasks,
            fifo.makespan_ns / 1e3, steal.makespan_ns / 1e3,
            fifo.makespan_ns / steal.makespan_ns,
            fifo.occupancy, steal.occupancy,
        ])
    return rows


def test_scheduler_policy_study(benchmark, policy_comparison, output_dir):
    phase = get_app("lulesh").representative_phase()

    def steal_schedule():
        return simulate_phase_stealing(phase, 64).makespan_ns

    benchmark(steal_schedule)

    # The paper's claim holds under both policies: the trace, not the
    # scheduler, caps parallelism — stealing moves makespans < 15%.
    for row in policy_comparison:
        ratio = row[4]
        assert 0.85 < ratio < 1.25, row

    write_figure(output_dir, "scheduler_policies.txt", format_rows(
        "FIFO (paper's runtime) vs work stealing — representative phase, "
        "64 cores",
        ["app", "tasks", "FIFO us", "steal us", "FIFO/steal",
         "FIFO occ", "steal occ"],
        policy_comparison))
