"""Fig. 2: hardware-agnostic scaling of the five applications.

(a) a single representative compute region on 1/32/64 cores;
(b) the full parallel region including MPI overheads at 256 ranks.
"""

import pytest
from conftest import write_figure

from repro.analysis import (
    compute_region_scaling,
    format_rows,
    full_app_scaling,
)
from repro.apps import APP_NAMES, get_app
from repro.core import Musa


@pytest.fixture(scope="module")
def curves():
    region, full = {}, {}
    for name in APP_NAMES:
        musa = Musa(get_app(name))
        region[name] = compute_region_scaling(musa)
        full[name] = full_app_scaling(musa, n_ranks=256, n_iterations=2)
    return region, full


def render(region, full) -> str:
    rows_a, rows_b = [], []
    for name in APP_NAMES:
        a, b = region[name], full[name]
        rows_a.append([name, a.speedups[1], a.speedups[2],
                       a.efficiency(32), a.efficiency(64)])
        rows_b.append([name, b.speedups[1], b.speedups[2],
                       b.efficiency(32), b.efficiency(64)])
    avg = lambda rows, i: sum(r[i] for r in rows) / len(rows)
    rows_a.append(["AVERAGE", avg(rows_a, 1), avg(rows_a, 2),
                   avg(rows_a, 3), avg(rows_a, 4)])
    rows_b.append(["AVERAGE", avg(rows_b, 1), avg(rows_b, 2),
                   avg(rows_b, 3), avg(rows_b, 4)])
    header = ["app", "speedup@32", "speedup@64", "eff@32", "eff@64"]
    return "\n\n".join([
        format_rows("Fig. 2a — single compute region, hardware agnostic "
                    "(paper avg eff: ~0.70@32, ~0.50@64)", header, rows_a),
        format_rows("Fig. 2b — full parallel region incl. MPI, 256 ranks "
                    "(paper avg eff: ~0.49@32, ~0.28@64)", header, rows_b),
    ])


def test_fig2_scaling(benchmark, curves, output_dir):
    region, full = curves

    musa = Musa(get_app("btmz"))

    def one_burst_replay():
        return musa.simulate_burst_full(n_cores=64, n_ranks=256,
                                        n_iterations=1).total_ns

    total = benchmark.pedantic(one_burst_replay, rounds=3, iterations=1)
    assert total > 0

    # Paper claims.
    assert region["hydro"].efficiency(64) > 0.75
    for name in APP_NAMES:
        if name != "hydro":
            assert region[name].efficiency(64) < 0.75
        assert full[name].efficiency(64) <= region[name].efficiency(64) + 0.02
    avg_b64 = sum(full[n].efficiency(64) for n in APP_NAMES) / 5
    assert avg_b64 < 0.45  # paper: drops below 30%

    write_figure(output_dir, "fig2_scaling.txt", render(region, full))
