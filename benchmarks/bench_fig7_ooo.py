"""Fig. 7: core out-of-order capability exploration.

Paper shapes: low-end cores ~35% slower than aggressive (Specfem3D
~60% slower) at ~50% of the power; high/medium within a few percent of
aggressive while saving ~18-20% power — the recommended design points.
"""

from conftest import write_figure
from figure_common import mean_bar, render_axis_figure

from repro.apps import APP_NAMES
from repro.core import normalize_axis

ORDER = ("aggressive", "lowend", "high", "medium")  # paper legend order


def test_fig7_ooo_capability(benchmark, full_sweep, output_dir):
    bars = benchmark(normalize_axis, full_sweep, "core", "aggressive",
                     "time_ns")

    s_low = {a: mean_bar(bars, a, 64, "lowend") for a in APP_NAMES}
    # Specfem3D is the most latency-bound: worst on the low-end core.
    assert min(s_low, key=s_low.get) == "spec3d"
    assert s_low["spec3d"] < 0.60            # paper: 60% slower
    for a in APP_NAMES:
        assert 0.35 < s_low[a] < 0.85        # paper: ~35% slower majority

    # Intermediate cores stay close to aggressive.
    for a in APP_NAMES:
        assert mean_bar(bars, a, 64, "high") > 0.90
        assert mean_bar(bars, a, 64, "medium") > 0.82

    # Power: low-end ~half; medium/high save meaningful power.
    pbars = normalize_axis(full_sweep, "core", "aggressive",
                           "power_core_l1_w")
    p_low = [mean_bar(pbars, a, 64, "lowend") for a in APP_NAMES]
    assert 0.35 < sum(p_low) / 5 < 0.75      # paper: ~50%
    for a in APP_NAMES:
        assert mean_bar(pbars, a, 64, "medium") < 0.95
        assert mean_bar(pbars, a, 64, "high") < 1.0

    # Energy: memory-bound LULESH gets savings from medium cores.
    ebars = normalize_axis(full_sweep, "core", "aggressive", "energy_j")
    assert mean_bar(ebars, "lulesh", 64, "medium") < 0.97

    write_figure(output_dir, "fig7_ooo.txt", render_axis_figure(
        full_sweep, "core", "aggressive", ORDER,
        "Fig. 7 — core OoO structures (normalized to aggressive)"))
