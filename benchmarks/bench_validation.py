"""Model-validation benchmark: the reproduction's counterpart of the
paper's Sec. IV-C validation statement (TaskSim/Dimemas <10% error,
McPAT <20%, DRAMPower <2%).

For every application kernel, cross-check the sweep's analytic cache
and DRAM models against the event-level substrates (exact LRU caches,
FR-FCFS controller) on streams synthesized from the kernel's reuse
profile.
"""

import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import APP_NAMES, get_app
from repro.config import cache_preset
from repro.uarch import validate_kernel


@pytest.fixture(scope="module")
def validations():
    out = []
    for app in APP_NAMES:
        detailed = get_app(app).detailed_trace()
        for kernel in detailed.names():
            out.append((app, validate_kernel(
                detailed[kernel], cache_preset("64M:512K"),
                l3_share_cores=32, n_accesses=40_000)))
    return out


def test_all_kernels_validate(benchmark, validations, output_dir):
    sig = get_app("spmz").detailed_trace()["sp_solve"]

    def one_validation():
        return validate_kernel(sig, cache_preset("64M:512K"),
                               l3_share_cores=32, n_accesses=20_000)

    benchmark.pedantic(one_validation, rounds=3, iterations=1)

    rows = []
    for app, v in validations:
        eff = ("n/a" if v.efficiency_error is None
               else f"{v.efficiency_error:.3f}")
        rows.append([app, v.kernel, v.max_miss_error, eff,
                     "PASS" if v.passed() else "FAIL"])
        assert v.passed(), (app, v.kernel)
    # Aggregate error well below the paper's own validation bars.
    worst_miss = max(v.max_miss_error for _, v in validations)
    assert worst_miss < 0.08

    write_figure(output_dir, "validation.txt", format_rows(
        "Analytic sweep models vs event-level substrates "
        f"(worst miss-ratio error {worst_miss:.3f})",
        ["app", "kernel", "max miss err", "DRAM eff err", "verdict"], rows))
