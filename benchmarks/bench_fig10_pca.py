"""Fig. 10: Principal Component Analysis of the design space.

Paper shapes (64-core, 2 GHz subset): for LULESH, PC0 explains >60% of
the variance and memory bandwidth evolves *against* execution time
(more bandwidth, fewer cycles) with cache size contributing and
OoO/SIMD contributing nothing; for HYDRO, OoO capacity is the variable
moving against execution time.
"""

import numpy as np
import pytest
from conftest import write_figure

from repro.analysis import PCA_VARIABLES, app_pca, format_rows


def render(results) -> str:
    blocks = ["Fig. 10 — PCA loadings (64 cores, 2 GHz subset)"]
    for app, r in results.items():
        rows = []
        for pc in (0, 1):
            rows.append(
                [f"PC{pc} ({100 * r.explained_variance_ratio[pc]:.1f}% var)"]
                + [f"{r.loading(v, pc):+.2f}" for v in PCA_VARIABLES]
            )
        blocks.append(format_rows(f"{app}", ["component"] + list(PCA_VARIABLES),
                                  rows))
        drivers = r.correlated_with_time(0)
        blocks.append(f"{app}: PC0 performance drivers: "
                      + (", ".join(f"{v} ({s:+.2f})" for v, s in drivers)
                         or "(none)"))
    return "\n\n".join(blocks)


def test_fig10_pca(benchmark, full_sweep, output_dir):
    lulesh = benchmark(app_pca, full_sweep, "lulesh", 64, 2.0)
    hydro = app_pca(full_sweep, "hydro", 64, 2.0)

    # LULESH: PC0 is the dominant component and couples execution time
    # with memory bandwidth (paper: >60% with their correlated sampling;
    # our orthogonal full-factorial design caps PC0 near 40%).
    assert lulesh.explained_variance_ratio[0] == max(
        lulesh.explained_variance_ratio)
    assert lulesh.explained_variance_ratio[0] > 0.30
    assert abs(lulesh.loading("Exec. time", 0)) > 0.5
    drivers = dict(lulesh.correlated_with_time(0))
    assert "Mem. BW" in drivers and drivers["Mem. BW"] > 0
    # OoO and SIMD contribute ~nothing to LULESH's PC0.
    assert abs(lulesh.loading("FPU", 0)) < 0.35

    # HYDRO: OoO capacity moves against execution time on a leading PC.
    hydro_drivers = dict(hydro.correlated_with_time(0)) | dict(
        hydro.correlated_with_time(1))
    assert "OoO struct." in hydro_drivers
    assert hydro_drivers["OoO struct."] > 0

    # Both PCAs explain everything across 5 components.
    np.testing.assert_allclose(lulesh.explained_variance_ratio.sum(), 1.0)

    write_figure(output_dir, "fig10_pca.txt",
                 render({"hydro": hydro, "lulesh": lulesh}))
