"""Shared fixtures for the figure-regeneration benchmarks.

The full 864-point sweep of all five applications is computed once per
session (parallel across processes) and cached on disk; every figure
benchmark derives its panel from it, exactly as the paper derives every
bar chart from the same simulation campaign.

Each ``bench_figN_*.py`` writes its regenerated figure/table to
``benchmarks/output/`` and asserts the paper's qualitative shape.

Environment knobs:

* ``REPRO_BENCH_PROCS``  — sweep worker processes (default: cpu count, max 8)
* ``REPRO_BENCH_FRESH=1`` — ignore the on-disk sweep cache
"""

import os
from pathlib import Path

import pytest

from repro.apps import APP_NAMES
from repro.config import full_design_space
from repro.core import ResultSet, run_sweep

OUTPUT_DIR = Path(__file__).parent / "output"
_CACHE = Path(__file__).parent / ".cache" / "full_sweep.json"
_JOURNAL = Path(__file__).parent / ".cache" / "full_sweep.jsonl"


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def full_sweep():
    """All 864 configurations x 5 applications (4320 simulations)."""
    fresh = os.environ.get("REPRO_BENCH_FRESH") == "1"
    if fresh:
        _JOURNAL.unlink(missing_ok=True)
    if _CACHE.exists() and not fresh:
        rs = ResultSet.load(_CACHE)
        if len(rs) == 864 * 5:
            return rs
    procs = int(os.environ.get("REPRO_BENCH_PROCS",
                               min(os.cpu_count() or 1, 8)))
    # Journal every record so an interrupted benchmark session resumes
    # instead of recomputing the 4,320-simulation campaign.
    rs = run_sweep(APP_NAMES, full_design_space(), processes=procs,
                   resume=_JOURNAL, fsync_every=64)
    _CACHE.parent.mkdir(parents=True, exist_ok=True)
    rs.save(_CACHE)
    _JOURNAL.unlink(missing_ok=True)
    return rs


def write_figure(output_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated figure and echo it to the terminal."""
    path = output_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n[{name}]\n{text}")
