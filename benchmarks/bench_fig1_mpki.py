"""Fig. 1: application runtime statistics — cache MPKI and DRAM request
rates at the 32- and 64-core baseline configurations.
"""

import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import APP_NAMES, get_app
from repro.config import baseline_node
from repro.core import Musa

PAPER = {  # (L1, L2, L3 MPKI, Grq/s) at 32 cores
    "hydro": (5.98, 1.78, 0.19, 0.02),
    "spmz": (96.99, 22.26, 13.80, 0.48),
    "btmz": (24.14, 1.86, 0.57, 0.11),
    "spec3d": (43.32, 6.95, 4.81, 0.41),
    "lulesh": (13.50, 4.61, 5.27, 0.51),
}


@pytest.fixture(scope="module")
def characterization():
    out = {}
    for cores in (32, 64):
        node = baseline_node(cores)
        for name in APP_NAMES:
            out[(name, cores)] = Musa(get_app(name)).simulate_node(node)
    return out


def render(characterization) -> str:
    blocks = []
    for cores in (32, 64):
        rows = []
        for name in APP_NAMES:
            r = characterization[(name, cores)]
            p = PAPER[name]
            rows.append([
                name, r.mpki_l1, r.mpki_l2, r.mpki_l3, r.gmem_req_per_s,
                f"({p[0]}/{p[1]}/{p[2]}/{p[3]})",
            ])
        blocks.append(format_rows(
            f"Fig. 1 — {cores} cores x 256 ranks "
            "(model vs paper L1/L2/L3 MPKI + Grq/s)",
            ["app", "L1-MPKI", "L2-MPKI", "L3-MPKI", "Grq/s", "paper"],
            rows))
    return "\n\n".join(blocks)


def test_fig1_characterization(benchmark, characterization, output_dir):
    musa = Musa(get_app("spmz"))
    node = baseline_node(32)

    def one_characterization():
        musa._detail_cache.clear()
        return musa.simulate_node(node)

    result = benchmark(one_characterization)
    assert result.mpki_l1 > 0
    # Shape assertions (rank order of Fig. 1).
    l1 = {n: characterization[(n, 32)].mpki_l1 for n in APP_NAMES}
    assert l1["spmz"] > l1["spec3d"] > l1["btmz"] > l1["lulesh"] > l1["hydro"]
    rates = {n: characterization[(n, 32)].gmem_req_per_s for n in APP_NAMES}
    assert max(rates, key=rates.get) == "lulesh"
    write_figure(output_dir, "fig1_mpki.txt", render(characterization))
