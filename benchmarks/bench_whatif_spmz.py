"""Sec. V-B4 counterfactual: "if SPMZ was able to scale up to 64 cores
with reasonable efficiency, it would demand more memory bandwidth than
our four channel configurations are able to provide and we would obtain
clear benefits on eight channel configurations."

The application-model override mechanism makes the hypothetical testable:
``SpMz(n_zones=256)`` is the same solver decomposed finely enough to
occupy a 64-core socket.
"""

import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import SpMz
from repro.config import baseline_node
from repro.core import Musa


@pytest.fixture(scope="module")
def counterfactual():
    # The fast corner, where per-core bandwidth demand peaks.
    node4 = baseline_node(64).with_(core="aggressive", vector_bits=512,
                                    frequency_ghz=3.0)
    node8 = node4.with_(memory="8chDDR4")
    out = {}
    for label, app in (("SP-MZ (traced, 40 zones)", SpMz()),
                       ("SP-MZ (what-if, 256 zones)", SpMz(n_zones=256))):
        musa = Musa(app)
        out[label] = (musa.simulate_node(node4), musa.simulate_node(node8))
    return out


def test_whatif_spmz_scaling(benchmark, counterfactual, output_dir):
    musa = Musa(SpMz(n_zones=256))
    node = baseline_node(64)

    def simulate_whatif():
        musa._detail_cache.clear()
        return musa.simulate_node(node)

    benchmark(simulate_whatif)

    rows = []
    for label, (r4, r8) in counterfactual.items():
        rows.append([label, r4.occupancy, r4.bw_utilization,
                     r4.time_ns / r8.time_ns])
    text = format_rows(
        "Sec. V-B4 counterfactual — SP-MZ at the aggressive/512-bit/3 GHz "
        "corner", ["configuration", "occupancy", "4ch BW util",
                   "8ch speedup"], rows)

    traced = counterfactual["SP-MZ (traced, 40 zones)"]
    whatif = counterfactual["SP-MZ (what-if, 256 zones)"]
    # Traced SP-MZ: starved socket, little channel sensitivity.
    assert traced[0].time_ns / traced[1].time_ns < 1.15
    # What-if SP-MZ: occupies the socket, saturates 4 channels, and gets
    # the paper's "clear benefits" from 8.
    assert whatif[0].occupancy > traced[0].occupancy + 0.2
    assert whatif[0].bw_utilization > 0.95
    assert whatif[0].time_ns / whatif[1].time_ns > 1.4

    write_figure(output_dir, "whatif_spmz.txt", text)
