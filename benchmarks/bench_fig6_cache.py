"""Fig. 6: cache-size exploration (32M:256K / 64M:512K / 96M:1M).

Paper shapes: ~11% average speedup at 96M:1M on 64 cores, led by HYDRO
(~21%, its working set fits a 512 kB L2); Specfem3D flat; the L2+L3
power share roughly doubles per capacity step; 64M:512K is the best
energy trade-off.
"""

from conftest import write_figure
from figure_common import mean_bar, render_axis_figure

from repro.apps import APP_NAMES
from repro.core import normalize_axis

BASE, MID, BIG = "32M:256K", "64M:512K", "96M:1M"


def test_fig6_cache_sizes(benchmark, full_sweep, output_dir):
    bars = benchmark(normalize_axis, full_sweep, "cache", BASE, "time_ns")

    s = {a: mean_bar(bars, a, 64, BIG) for a in APP_NAMES}
    assert 1.10 < s["hydro"] < 1.40          # paper 1.21
    assert 1.03 < s["btmz"] < 1.25           # paper 1.09
    assert abs(s["spec3d"] - 1.0) < 0.08     # paper flat
    avg = sum(s.values()) / 5
    assert 1.03 < avg < 1.25                 # paper 1.11

    # Diminishing returns: the 64M step captures most of each app's gain.
    for app in ("hydro", "btmz"):
        mid = mean_bar(bars, app, 64, MID)
        big = mean_bar(bars, app, 64, BIG)
        assert mid > 1.0
        assert big - mid < mid - 1.0 + 0.06

    # Energy: the middle point is never worse than the small config for
    # the cache-sensitive apps (Sec. V-B2's trade-off recommendation).
    ebars = normalize_axis(full_sweep, "cache", BASE, "energy_j")
    for app in ("hydro", "btmz"):
        assert mean_bar(ebars, app, 64, MID) < 1.02

    # Power ladder: share roughly doubles per step.
    for app in ("spmz", "btmz"):
        shares = {}
        for label in (BASE, MID, BIG):
            sub = full_sweep.filter(app=app, cores=64, cache=label)
            shares[label] = float(
                (sub.values("power_l2_l3_w") / sub.values("power_total_w"))
                .mean())
        assert shares[BASE] < shares[MID] < shares[BIG]
        assert shares[BIG] > 2.0 * shares[BASE]

    write_figure(output_dir, "fig6_cache.txt", render_axis_figure(
        full_sweep, "cache", BASE, (BASE, MID, BIG),
        "Fig. 6 — L3:L2 cache sizes (normalized to 32M:256K)"))
