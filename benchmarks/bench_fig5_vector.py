"""Fig. 5: FPU vector-width exploration (128/256/512-bit).

Paper shapes: 512-bit buys 20% (HYDRO) to 75% (SP-MZ), ~40% average,
nothing for LULESH; Core+L1 power +60% on average; 256-bit configs save
3-18% energy for most apps.
"""

from conftest import write_figure
from figure_common import mean_bar, render_axis_figure

from repro.apps import APP_NAMES
from repro.core import normalize_axis


def test_fig5_vector_width(benchmark, full_sweep, output_dir):
    bars = benchmark(normalize_axis, full_sweep, "vector", 128, "time_ns")

    s512 = {a: mean_bar(bars, a, 64, 512) for a in APP_NAMES}
    # Who wins and by roughly what factor.
    assert max(s512, key=s512.get) == "spmz"
    assert 1.5 < s512["spmz"] < 2.2          # paper 1.75
    assert 1.05 < s512["hydro"] < 1.35       # paper 1.20
    assert abs(s512["lulesh"] - 1.0) < 0.05  # paper ~1.0
    non_lulesh = [v for a, v in s512.items() if a != "lulesh"]
    assert 1.25 < sum(non_lulesh) / 4 < 1.65  # paper avg 1.40

    # Power: +~60% Core+L1 on average at 512-bit.
    pbars = normalize_axis(full_sweep, "vector", 128, "power_core_l1_w")
    p512 = [mean_bar(pbars, a, 64, 512) for a in APP_NAMES]
    assert 1.25 < sum(p512) / 5 < 1.9

    # Energy: 256-bit saves energy for the vectorizing apps.
    ebars = normalize_axis(full_sweep, "vector", 128, "energy_j")
    for app in ("spmz", "btmz"):
        assert mean_bar(ebars, app, 64, 256) < 1.0

    write_figure(output_dir, "fig5_vector.txt", render_axis_figure(
        full_sweep, "vector", 128, (128, 256, 512),
        "Fig. 5 — FPU vector width (normalized to 128-bit)"))
