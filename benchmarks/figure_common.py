"""Shared rendering for the per-axis figures (Figs. 5-9).

Each figure has three panels: (a) normalized speedup, (b) the
Core+L1 / L2+L3 / Memory power split, (c) normalized energy-to-solution
— for 32- and 64-core nodes, averaged over paired configurations.
"""

from typing import Sequence

from repro.analysis import format_panel, format_rows
from repro.apps import APP_NAMES
from repro.core import ResultSet, axis_table, normalize_axis

__all__ = ["render_axis_figure", "mean_bar"]


def mean_bar(bars, app, cores, value) -> float:
    hits = [b for b in bars if b.app == app and b.cores == cores
            and b.value == value]
    if len(hits) != 1:
        raise AssertionError(f"missing bar {app}/{cores}/{value}")
    return hits[0].mean


def _power_split_rows(results: ResultSet, axis: str, values: Sequence,
                      cores: int):
    rows = []
    for app in APP_NAMES:
        for v in values:
            sub = results.filter(app=app, cores=cores, **{axis: v})
            rows.append([
                app, v,
                float(sub.values("power_core_l1_w").mean()),
                float(sub.values("power_l2_l3_w").mean()),
                float(sub.values("power_memory_w").mean()),
                float(sub.values("power_total_w").mean()),
            ])
    return rows


def render_axis_figure(
    results: ResultSet,
    axis: str,
    baseline,
    values: Sequence,
    title: str,
) -> str:
    """Render one paper figure (a/b/c panels x 32/64-core columns)."""
    speed = normalize_axis(results, axis, baseline, "time_ns")
    energy = normalize_axis(results, axis, baseline, "energy_j")
    blocks = [title]
    for cores in (32, 64):
        blocks.append(format_panel(
            f"(a) speedup vs {axis}={baseline} — {cores} cores x 256 ranks",
            axis_table(speed, APP_NAMES, values, cores), values, axis))
        blocks.append(format_rows(
            f"(b) power split [W] — {cores} cores",
            ["app", axis, "Core+L1", "L2+L3", "Memory", "total"],
            _power_split_rows(results, axis, values, cores)))
        blocks.append(format_panel(
            f"(c) energy-to-solution vs {axis}={baseline} — {cores} cores",
            axis_table(energy, APP_NAMES, values, cores), values, axis))
    return "\n\n".join(blocks)
