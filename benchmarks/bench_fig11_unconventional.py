"""Table II + Fig. 11: unconventional application-specific configurations.

SP-MZ chases SIMD width (Vector+ 1024-bit, Vector++ 2048-bit): modest
extra speedup at rapidly exploding power/energy.  LULESH chases memory
bandwidth with narrow FPUs (MEM+ 16-channel DDR4, MEM++ 16-channel
HBM): large energy savings at near-parity performance, with HBM's lower
latency the fastest memory configuration (no energy data for HBM, as in
the paper).
"""

import pytest
from conftest import write_figure

from repro.analysis import format_rows
from repro.apps import get_app
from repro.config import unconventional_configs
from repro.core import Musa


@pytest.fixture(scope="module")
def results():
    out = {}
    for app, cfgs in unconventional_configs().items():
        musa = Musa(get_app(app))
        out[app] = {label: musa.simulate_node(node)
                    for label, node in cfgs.items()}
    return out


def render(results) -> str:
    blocks = ["Fig. 11 — application-specific configurations "
              "(relative to each app's Best-DSE)"]
    paper = {
        ("spmz", "Vector+"): (1.13, "~1.1", "~1.1"),
        ("spmz", "Vector++"): (1.43, 3.14, 2.5),
        ("lulesh", "MEM+"): (1.07, None, 0.53),
        ("lulesh", "MEM++"): (1.30, None, None),
    }
    for app, runs in results.items():
        base = runs["Best-DSE"]
        rows = [["Best-DSE", 1.0, 1.0, 1.0, "(baseline)"]]
        for label, r in runs.items():
            if label == "Best-DSE":
                continue
            perf = base.time_ns / r.time_ns
            power = r.power.known_total_w / base.power.total_w
            energy = (None if r.energy_j is None
                      else r.energy_j / base.energy_j)
            p = paper[(app, label)]
            rows.append([label, perf, power, energy,
                         f"(paper: {p[0]}/{p[1]}/{p[2]})"])
        blocks.append(format_rows(f"{app}",
                                  ["config", "perf", "power", "energy",
                                   "paper perf/power/energy"], rows))
    return "\n\n".join(blocks)


def test_fig11_unconventional(benchmark, results, output_dir):
    musa = Musa(get_app("spmz"))
    node = unconventional_configs()["spmz"]["Vector++"]

    def simulate_special():
        musa._detail_cache.clear()
        return musa.simulate_node(node)

    benchmark(simulate_special)

    spmz, lulesh = results["spmz"], results["lulesh"]

    # SP-MZ: wider vectors keep helping but cost explodes.
    assert spmz["Best-DSE"].time_ns >= spmz["Vector+"].time_ns
    assert spmz["Vector+"].time_ns >= spmz["Vector++"].time_ns
    p_ratio = (spmz["Vector++"].power.total_w
               / spmz["Best-DSE"].power.total_w)
    e_ratio = spmz["Vector++"].energy_j / spmz["Best-DSE"].energy_j
    assert p_ratio > 1.4       # paper: 3.14x
    assert e_ratio > 1.2       # paper: 2.5x

    # LULESH: MEM+ saves energy at near-parity performance.
    e_mem = lulesh["MEM+"].energy_j / lulesh["Best-DSE"].energy_j
    assert e_mem < 0.90        # paper: -47%
    perf_mem = lulesh["Best-DSE"].time_ns / lulesh["MEM+"].time_ns
    assert perf_mem == pytest.approx(1.0, abs=0.12)  # paper: +7%

    # MEM++ (HBM): fastest memory config, no energy data.
    assert lulesh["MEM++"].time_ns < lulesh["MEM+"].time_ns
    assert lulesh["MEM++"].energy_j is None

    write_figure(output_dir, "fig11_unconventional.txt", render(results))
