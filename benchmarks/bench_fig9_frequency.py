"""Fig. 9: CPU frequency exploration (1.5 / 2.0 / 2.5 / 3.0 GHz).

Paper shapes: performance scales with frequency for all apps except
HYDRO, whose fixed-wall-clock runtime (task creation) events bottleneck
it above 2.5 GHz; node power grows ~2.5x for the 2x frequency step —
each 1% of performance costs ~1.25% power.
"""

from conftest import write_figure
from figure_common import mean_bar, render_axis_figure

from repro.apps import APP_NAMES
from repro.core import normalize_axis

FREQS = (1.5, 2.0, 2.5, 3.0)


def test_fig9_frequency(benchmark, full_sweep, output_dir):
    bars = benchmark(normalize_axis, full_sweep, "frequency", 1.5,
                     "time_ns")

    # Compute-bound apps keep scaling.
    for a in ("spmz", "btmz"):
        assert mean_bar(bars, a, 64, 3.0) > 1.55

    # HYDRO's runtime bottleneck: the 2.5 -> 3.0 GHz step adds almost
    # nothing (wall-clock task-creation events don't scale with f).
    h25 = mean_bar(bars, "hydro", 64, 2.5)
    h30 = mean_bar(bars, "hydro", 64, 3.0)
    assert h30 - h25 < 0.10
    assert h25 > 1.25

    # Monotone speedups everywhere.
    for a in APP_NAMES:
        seq = [mean_bar(bars, a, 64, f) for f in FREQS]
        assert all(x <= y + 0.07 for x, y in zip(seq, seq[1:]))

    # Power grows super-linearly with frequency.
    pbars = normalize_axis(full_sweep, "frequency", 1.5, "power_total_w")
    for a in ("hydro", "spmz", "btmz"):
        p30 = mean_bar(pbars, a, 64, 3.0)
        s30 = mean_bar(bars, a, 64, 3.0)
        assert p30 > 1.6           # paper: ~2.5x
        assert p30 > s30           # perf/W worsens: ~1.25% power per 1% perf

    write_figure(output_dir, "fig9_frequency.txt", render_axis_figure(
        full_sweep, "frequency", 1.5, FREQS,
        "Fig. 9 — CPU clock frequency (normalized to 1.5 GHz)"))
