#!/usr/bin/env python
"""Developer calibration probe: model vs paper targets for Figs 1/2/5-9.

Run after touching application characteristics or model constants:

    python scripts/calibrate.py
"""
from repro import Musa, get_app, baseline_node, APP_NAMES
from repro.analysis import compute_region_scaling

TARGETS_FIG1 = {
    'hydro': (5.98, 1.78, 0.19, 0.02), 'spmz': (96.99, 22.26, 13.80, 0.48),
    'btmz': (24.14, 1.86, 0.57, 0.11), 'spec3d': (43.32, 6.95, 4.81, 0.41),
    'lulesh': (13.50, 4.61, 5.27, 0.51),
}

def main():
    print("=== Fig 1 (32-core baseline): model vs paper ===")
    for name in APP_NAMES:
        m = Musa(get_app(name))
        r = m.simulate_node(baseline_node(32))
        t = TARGETS_FIG1[name]
        print(f"{name:8s} L1 {r.mpki_l1:6.2f}/{t[0]:6.2f} L2 {r.mpki_l2:6.2f}/{t[1]:6.2f}"
              f" L3 {r.mpki_l3:6.2f}/{t[2]:6.2f} GReq {r.gmem_req_per_s:5.3f}/{t[3]:4.2f}"
              f" bwu {r.bw_utilization:4.2f} occ {r.occupancy:4.2f}")

    print("\n=== Fig 2a scaling (paper: hydro>75%@64; avg ~70%@32, ~50%@64) ===")
    effs32, effs64 = [], []
    for name in APP_NAMES:
        c = compute_region_scaling(Musa(get_app(name)))
        effs32.append(c.efficiency(32)); effs64.append(c.efficiency(64))
        print(f"{name:8s} @32 {c.speedups[1]:5.1f} (eff {c.efficiency(32):.2f})"
              f"  @64 {c.speedups[2]:5.1f} (eff {c.efficiency(64):.2f})")
    print(f"avg eff: @32 {sum(effs32)/5:.2f}  @64 {sum(effs64)/5:.2f}")

    print("\n=== Figs 5-9 axis probes @64c (targets: v512 h1.2/s1.75/b~1.35/sp~1.35/l1.0;")
    print("    c96/32 h1.21/b1.09/l1.12/sp~1.0; lo/ag ~0.65 (sp 0.4, l ~0.8);")
    print("    8ch lulesh ~1.4+ others ~1.0; f2x ~1.8 (hydro plateaus 2.5->3); Pf ~2.5) ===")
    base = baseline_node(64)
    for name in APP_NAMES:
        m = Musa(get_app(name))
        r0 = m.simulate_node(base)
        v = m.simulate_node(base.with_(vector_bits=512))
        c32 = m.simulate_node(base.with_(cache="32M:256K"))
        c96 = m.simulate_node(base.with_(cache="96M:1M"))
        lo = m.simulate_node(base.with_(core="lowend"))
        ag = m.simulate_node(base.with_(core="aggressive"))
        md = m.simulate_node(base.with_(core="medium"))
        m8 = m.simulate_node(base.with_(memory="8chDDR4"))
        f15 = m.simulate_node(base.with_(frequency_ghz=1.5))
        f25 = m.simulate_node(base.with_(frequency_ghz=2.5))
        f30 = m.simulate_node(base.with_(frequency_ghz=3.0))
        print(f"{name:8s} v512 {r0.time_ns/v.time_ns:4.2f} Pv {v.power.core_l1_w/r0.power.core_l1_w:4.2f}"
              f" | c96/32 {c32.time_ns/c96.time_ns:4.2f}"
              f" | lo/ag {ag.time_ns/lo.time_ns:4.2f} md/ag {ag.time_ns/md.time_ns:4.2f}"
              f" Plo/ag {lo.power.core_l1_w/ag.power.core_l1_w:4.2f}"
              f" | 8ch {r0.time_ns/m8.time_ns:4.2f} bwu {r0.bw_utilization:4.2f}"
              f" | f1.5-3 {f15.time_ns/f30.time_ns:4.2f} f2.5-3 {f25.time_ns/f30.time_ns:4.2f}"
              f" Pf {f30.power.total_w/f15.power.total_w:4.2f}"
              f" | Ptot {r0.power.total_w:5.0f}W L23% {100*r0.power.l2_l3_w/r0.power.total_w:4.1f}")

if __name__ == "__main__":
    main()
