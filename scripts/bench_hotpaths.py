#!/usr/bin/env python
"""Benchmark the vectorized hot paths against the retained scalar paths.

Three comparisons, every one gated on *bitwise* result identity so a
speedup can never be bought with a drifting float:

1. **Fast mode** — the config-major :class:`BatchEvaluator` (batched
   miss model + vectorized phase scheduler) vs the per-config
   ``Musa.simulate_node`` loop the sweep used before batching.
2. **Replay mode** — the level-batched array replay driver vs the
   event-at-a-time worklist driver (``array_driver=False``) on the same
   config-vectorized engine, plus per-config scalar replay on a sample
   of configs for identity and a scalar-rate estimate.
3. **Campaign** — every application over the full design space through
   ``run_sweep``, batched vs scalar.

Writes a JSON report (``BENCH_hotpaths.json`` by default) with timings,
speedups and hot-path counters.  ``--smoke`` shrinks the space and rank
count for CI: identity is still asserted everywhere, speedup floors are
not (CI machine timing is noisy).

Run from the repo root:
    PYTHONPATH=src python scripts/bench_hotpaths.py [--smoke] [--out F]
"""

import argparse
import json
import platform
import sys
import time

import numpy as np

import repro.core.batch as core_batch
from repro.apps import APP_NAMES, get_app
from repro.config import DesignSpace
from repro.core import run_sweep
from repro.core.batch import BatchEvaluator
from repro.core.musa import Musa
from repro.obs import MetricsRegistry, set_metrics, summarize

FULL_SPACE = DesignSpace()
SMOKE_SPACE = DesignSpace(core_labels=("medium", "high"),
                          cache_labels=("64M:512K",),
                          memory_labels=("4chDDR4", "8chDDR4"),
                          frequencies=(2.0,), vector_widths=(128, 512),
                          core_counts=(64,))


def _records(results):
    return json.dumps([r.record() for r in results], sort_keys=True)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_fast_mode(app_name, nodes, min_speedup):
    """Batched fast-mode evaluation vs the per-config scalar loop."""
    print(f"[fast] {app_name} x {len(nodes)} configs")
    scalar_musa = Musa(get_app(app_name))
    scalar, t_scalar = _timed(
        lambda: [scalar_musa.simulate_node(n) for n in nodes])

    ev = BatchEvaluator(Musa(get_app(app_name)))
    batched_cold, t_cold = _timed(lambda: ev.evaluate(nodes))
    batched_warm, t_warm = _timed(lambda: ev.evaluate(nodes))

    assert _records(batched_cold) == _records(scalar), \
        "batched fast mode differs from scalar simulate_node"
    assert _records(batched_warm) == _records(scalar)
    speedup = t_scalar / t_warm if t_warm > 0 else float("inf")
    print(f"  scalar loop   {t_scalar:8.3f} s")
    print(f"  batched cold  {t_cold:8.3f} s")
    print(f"  batched warm  {t_warm:8.3f} s   ({speedup:.1f}x vs scalar)")
    if min_speedup is not None:
        assert speedup >= min_speedup, \
            f"fast-mode speedup {speedup:.2f}x below floor {min_speedup}x"
    return {
        "app": app_name, "n_configs": len(nodes),
        "scalar_loop_s": t_scalar, "batched_cold_s": t_cold,
        "batched_warm_s": t_warm, "speedup_warm": speedup,
    }


def bench_replay_mode(app_name, nodes, n_ranks, n_scalar_sample):
    """Array replay driver vs worklist driver vs per-config scalar."""
    print(f"[replay] {app_name} x {len(nodes)} configs, {n_ranks} ranks")
    reg = MetricsRegistry()
    prev = set_metrics(reg)
    try:
        ev = BatchEvaluator(Musa(get_app(app_name)))
        array_cold, t_array_cold = _timed(
            lambda: ev.evaluate(nodes, n_ranks=n_ranks, mode="replay"))
        array_warm, t_array_warm = _timed(
            lambda: ev.evaluate(nodes, n_ranks=n_ranks, mode="replay"))
        assert _records(array_cold) == _records(array_warm)

        # Same engine, order-free path pinned to the event-at-a-time
        # worklist driver (the pre-array behaviour).
        orig = core_batch.replay_batch
        core_batch.replay_batch = (
            lambda *a, **k: orig(*a, array_driver=False, **k))
        try:
            ev_w = BatchEvaluator(Musa(get_app(app_name)))
            ev_w.evaluate(nodes, n_ranks=n_ranks, mode="replay")  # warm
            worklist, t_worklist = _timed(
                lambda: ev_w.evaluate(nodes, n_ranks=n_ranks, mode="replay"))
        finally:
            core_batch.replay_batch = orig
        assert _records(worklist) == _records(array_warm), \
            "array replay driver differs from worklist driver"

        # Per-config scalar replay on a sample: identity + rate estimate.
        stride = max(1, len(nodes) // n_scalar_sample)
        sample = list(range(0, len(nodes), stride))[:n_scalar_sample]
        m = Musa(get_app(app_name))
        scalar_sample, t_scalar_sample = _timed(lambda: [
            m.simulate_node(nodes[i], n_ranks=n_ranks, mode="replay")
            for i in sample])
        for j, i in enumerate(sample):
            assert scalar_sample[j].record() == array_warm[i].record(), \
                f"array replay differs from scalar replay at config {i}"

        d = summarize(reg.snapshot())["derived"]
        c = reg.snapshot()["counters"]
    finally:
        set_metrics(prev)

    scalar_per_config = t_scalar_sample / len(sample)
    scalar_est = scalar_per_config * len(nodes)
    speedup = scalar_est / t_array_warm if t_array_warm > 0 else float("inf")
    print(f"  array cold    {t_array_cold:8.3f} s")
    print(f"  array warm    {t_array_warm:8.3f} s")
    print(f"  worklist warm {t_worklist:8.3f} s   "
          f"({t_worklist / t_array_warm:.1f}x slower than array)"
          if t_array_warm > 0 else "")
    print(f"  scalar        {scalar_per_config:8.3f} s/config "
          f"({len(sample)} sampled; est. {scalar_est:.1f} s for "
          f"{len(nodes)}; {speedup:.1f}x vs array warm)")
    assert d["replay_array_events"] > 0, \
        "replay bench never exercised the array driver"
    return {
        "app": app_name, "n_configs": len(nodes), "n_ranks": n_ranks,
        "array_cold_s": t_array_cold, "array_warm_s": t_array_warm,
        "worklist_warm_s": t_worklist,
        "scalar_per_config_s": scalar_per_config,
        "scalar_estimated_total_s": scalar_est,
        "n_scalar_sampled": len(sample),
        "speedup_array_vs_scalar_est": speedup,
        "speedup_array_vs_worklist": (
            t_worklist / t_array_warm if t_array_warm > 0 else None),
        "counters": {
            "replay_array_events": d["replay_array_events"],
            "replay_lockstep_events": d["replay_lockstep_events"],
            "replay_peeled_configs": d["replay_peeled_configs"],
            "tape_builds": c.get("replay.tape.builds", 0),
        },
    }


def bench_campaign(apps, space):
    """Full batched campaign vs the scalar sweep, all apps."""
    print(f"[campaign] {len(apps)} apps x {len(space)} configs")
    reg = MetricsRegistry()
    batched, t_batched = _timed(
        lambda: run_sweep(apps, space, processes=1, metrics=reg))
    scalar, t_scalar = _timed(
        lambda: run_sweep(apps, space, processes=1, batch=False))
    assert json.dumps(list(batched), sort_keys=True) == \
        json.dumps(list(scalar), sort_keys=True), \
        "batched campaign differs from scalar campaign"
    d = summarize(reg.snapshot())["derived"]
    assert d["miss_batch_geometries"] > 0
    assert d["sched_batch_fast"] > 0
    speedup = t_scalar / t_batched if t_batched > 0 else float("inf")
    print(f"  batched {t_batched:8.3f} s   scalar {t_scalar:8.3f} s   "
          f"({speedup:.1f}x)")
    return {
        "apps": list(apps), "n_configs": len(space),
        "batched_s": t_batched, "scalar_s": t_scalar, "speedup": speedup,
        "counters": {
            "miss_batch_geometries": d["miss_batch_geometries"],
            "sched_batch_fast": d["sched_batch_fast"],
            "sched_batch_fallbacks": d["sched_batch_fallbacks"],
        },
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small CI run: identity asserted, no speedup "
                         "floors, report written to /tmp")
    ap.add_argument("--out", default=None,
                    help="report path (default BENCH_hotpaths.json, or "
                         "/tmp/bench_hotpaths_smoke.json with --smoke)")
    args = ap.parse_args()

    if args.smoke:
        space, apps = SMOKE_SPACE, ["spmz", "hydro"]
        n_ranks, n_sample, min_speedup = 16, 4, None
        out = args.out or "/tmp/bench_hotpaths_smoke.json"
    else:
        space, apps = FULL_SPACE, list(APP_NAMES)
        n_ranks, n_sample, min_speedup = 256, 6, 4.0
        out = args.out or "BENCH_hotpaths.json"
    nodes = list(space)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "fast_mode": bench_fast_mode("lulesh", nodes, min_speedup),
        "replay_mode": bench_replay_mode("lulesh", nodes, n_ranks,
                                         n_sample),
        "campaign": bench_campaign(apps, space),
    }
    with open(out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
