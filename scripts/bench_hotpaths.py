#!/usr/bin/env python
"""Thin wrapper: the hot-path macro benchmarks via the shared harness.

Historically this script carried its own timing loops, identity asserts
and env capture; all of that now lives in :mod:`repro.bench` (PR 6).
This entry point just selects the matching registry ids — the batched
fast-mode evaluation, the replay-mode evaluation and the all-apps
campaign, each still gated on bit-identity against the scalar path —
and delegates to ``repro bench``.

Run from the repo root:
    PYTHONPATH=src python scripts/bench_hotpaths.py [--smoke] [--out F]
"""

import argparse
import sys

from repro.cli.main import main as repro_main

BENCH_IDS = ["macro.fast_sweep", "macro.replay_sweep", "macro.campaign"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized workloads (identity still asserted)")
    ap.add_argument("--out", default=None,
                    help="JSON report path (default "
                         "BENCH_hotpaths.report.json, or /tmp with --smoke)")
    ap.add_argument("--append", action="store_true",
                    help="append results to the trend ledger")
    ap.add_argument("--ledger", default="BENCH_LEDGER.jsonl")
    args = ap.parse_args()

    out = args.out or ("/tmp/bench_hotpaths_smoke.json" if args.smoke
                       else "BENCH_hotpaths.report.json")
    argv = ["bench", "--only", *BENCH_IDS, "--json", out,
            "--ledger", args.ledger]
    if args.smoke:
        argv.append("--smoke")
    if args.append:
        argv.append("--append")
    return repro_main(argv)


if __name__ == "__main__":
    sys.exit(main())
