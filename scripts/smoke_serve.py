#!/usr/bin/env python
"""CI smoke serve: the query API end-to-end over real HTTP.

Starts the asyncio server on an ephemeral port, issues the same sweep
query twice, and asserts the serving contracts:

* the second request is answered entirely from the content-addressed
  store — the store-hit counter covers every point and **zero** engine
  counters move;
* the result payload is byte-identical across servings and bit-
  identical to a direct ``run_sweep`` of the same inputs;
* best/delta queries reuse the same store entries (no re-evaluation);
* invalidation drops the entries and the next query re-evaluates.

Exits non-zero on any violation.

Run from the repo root:  PYTHONPATH=src python scripts/smoke_serve.py
"""

import asyncio
import json
import sys
import tempfile
import threading
from pathlib import Path

from repro.config import smoke_design_space
from repro.core import ResultSet, run_sweep
from repro.core.canon import canonical_dumps
from repro.core.store import ResultStore
from repro.obs import get_metrics
from repro.serve import ReproServer, ServeClient, ServeState

ENGINE_COUNTERS = ("musa.simulate_node", "phase_sim.calls")
QUERY = {"kind": "sweep", "apps": ["spmz"], "space": "smoke"}


def main() -> int:
    space = smoke_design_space()
    print(f"smoke serve: 1 app x {len(space)} configs over HTTP")
    reg = get_metrics()

    tmp = tempfile.mkdtemp()
    store = ResultStore(Path(tmp) / "store.jsonl")
    state = ServeState(store, code_version="smoke")
    server = ReproServer(state, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_server():
        asyncio.set_event_loop(loop)

        async def main_coro():
            await server.start()
            started.set()
            await asyncio.Event().wait()

        loop.run_until_complete(main_coro())

    threading.Thread(target=run_server, daemon=True).start()
    assert started.wait(timeout=10), "server did not start"
    client = ServeClient(port=server.port)
    assert client.health()["ok"]

    # 1. Cold query: evaluates every point, fills the store.
    status1, body1 = client.raw_query(QUERY)
    assert status1 == 200, body1
    parsed1 = json.loads(body1)
    assert parsed1["served"]["evaluated"] == len(space), parsed1["served"]
    assert reg.counter("store.put") == len(space)
    print(f"  cold query OK: {parsed1['served']['evaluated']} evaluated, "
          f"{int(reg.counter('store.put'))} store puts")

    # 2. Warm query: all store hits, zero engine counters, result
    #    byte-identical.
    engines_before = {c: reg.counter(c) for c in ENGINE_COUNTERS}
    hits_before = reg.counter("store.hit")
    status2, body2 = client.raw_query(QUERY)
    assert status2 == 200, body2
    parsed2 = json.loads(body2)
    assert parsed2["served"]["evaluated"] == 0, parsed2["served"]
    assert parsed2["served"]["store_hits"] == len(space), parsed2["served"]
    assert reg.counter("store.hit") - hits_before == len(space)
    for c in ENGINE_COUNTERS:
        moved = reg.counter(c) - engines_before[c]
        assert moved == 0, f"engine counter {c} moved by {moved} on a hit"
    assert canonical_dumps(parsed2["result"]) == \
        canonical_dumps(parsed1["result"]), "result payload not byte-stable"
    print(f"  warm query OK: {parsed2['served']['store_hits']} store hits, "
          "zero engine work, byte-identical result")

    # 3. Bit-identity against a direct sweep of the same inputs.
    direct = run_sweep(["spmz"], space, processes=1)
    assert ResultSet(parsed2["result"]["records"]) == direct, \
        "served records differ from a direct run_sweep"
    print(f"  bit-identity OK: {len(direct)} records match run_sweep")

    # 4. Best/delta queries reuse the stored points.
    best = client.query({"kind": "best", "apps": ["spmz"], "space": "smoke",
                         "objective": "time_ns"})
    assert best["served"]["evaluated"] == 0, best["served"]
    delta = client.query({"kind": "delta", "apps": ["spmz"],
                          "space": "smoke", "axis": "vector",
                          "a": 128, "b": 512})
    assert delta["served"]["evaluated"] == 0, delta["served"]
    assert len(delta["result"]["pairs"]) == len(space) // 2
    print(f"  best/delta OK: best={best['result']['label']}, "
          f"{len(delta['result']['pairs'])} delta pairs, all from store")

    # 5. Invalidation: entries drop, next query re-evaluates.
    removed = client.invalidate({"app": "spmz"})
    assert removed == len(space), removed
    parsed3 = client.query(QUERY)
    assert parsed3["served"]["evaluated"] == len(space), parsed3["served"]
    assert canonical_dumps(parsed3["result"]) == \
        canonical_dumps(parsed1["result"]), "re-evaluation changed bytes"
    print(f"  invalidation OK: {removed} dropped, re-evaluated "
          "bit-identically")

    derived = client.metrics()["derived"]
    assert derived["serve_requests"] >= 5
    assert derived["store_hit_rate"] is not None
    print(f"  metrics OK: {int(derived['serve_requests'])} requests, "
          f"store hit rate {derived['store_hit_rate']:.2f}")
    print("smoke serve passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
