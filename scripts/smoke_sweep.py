#!/usr/bin/env python
"""CI smoke sweep: 2 apps x 8 configs exercising fault injection,
journal resume, and the batched evaluation engine.

Asserts that a campaign killed mid-run by an injected fatal fault and
resumed from its journal is bit-identical to an uninterrupted run, that
retried faults leave no failure stubs, that the batched (config-major)
engine produces bit-identical results to scalar per-config evaluation
— in fast mode and in replay mode, where the config-vectorized replay
engine must match per-config scalar replay byte-for-byte — that a
campaign split into two K/N shards and merged back with merge_journal
resumes bit-identically with zero re-evaluation, and that the
execution metrics report throughput and memoization.
Exits non-zero on any violation.

Run from the repo root:  PYTHONPATH=src python scripts/smoke_sweep.py
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.config import smoke_design_space
from repro.core import (FailNTimes, SweepAbort, merge_journal,
                        replay_journal, run_sweep)
from repro.obs import MetricsRegistry, summarize

APPS = ["spmz", "hydro"]
SPACE = smoke_design_space()  # 8 configurations


def main() -> int:
    assert len(SPACE) == 8, f"smoke space drifted: {len(SPACE)} configs"
    print(f"smoke sweep: {len(APPS)} apps x {len(SPACE)} configs")

    # 0. Batched (default) vs scalar evaluation: bit-identical results.
    reg_b = MetricsRegistry()
    cold = run_sweep(APPS, SPACE, processes=1, metrics=reg_b)
    reference = json.dumps(list(cold), sort_keys=True)
    assert reg_b.counter("sweep.batch.configs") == len(APPS) * len(SPACE)
    assert reg_b.counter("sweep.batch.fallback") == 0
    assert reg_b.counter("miss.batch.geometries") > 0, \
        "batched sweep never used the vectorized miss model"
    assert reg_b.counter("sched.batch.fast") > 0, \
        "batched sweep never used the vectorized phase scheduler"

    reg_s = MetricsRegistry()
    scalar = run_sweep(APPS, SPACE, processes=1, batch=False,
                       metrics=reg_s)
    assert reg_s.counter("sweep.batch.configs") == 0
    assert json.dumps(list(scalar), sort_keys=True) == reference, \
        "batched sweep differs from scalar sweep"
    print(f"  batched == scalar: {len(cold)} records bit-identical")

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "smoke.jsonl"

        # 1. Kill the campaign partway through via an injected fatal
        #    fault, then resume from the journal.
        victim = list(SPACE)[5].label
        try:
            run_sweep(APPS, SPACE, processes=1, resume=journal,
                      fault_hook=FailNTimes(times=1, fatal=True,
                                            label=victim, app="spmz"))
            raise AssertionError("injected abort did not fire")
        except SweepAbort:
            pass
        # The columnar journal packs a whole shard into one block line,
        # so count replayed records, not lines.
        n_journaled = len(replay_journal(journal).results)
        assert 0 < n_journaled < len(APPS) * len(SPACE), n_journaled
        print(f"  killed mid-run after {n_journaled} journaled records")

        reg = MetricsRegistry()
        resumed = run_sweep(APPS, SPACE, processes=1, resume=journal,
                            metrics=reg)
        assert reg.counter("sweep.tasks.skipped") == n_journaled
        assert json.dumps(list(resumed), sort_keys=True) == reference, \
            "resumed sweep differs from uninterrupted run"
        print(f"  resume OK: skipped {n_journaled}, "
              f"simulated {int(reg.counter('sweep.tasks.completed'))}, "
              "results bit-identical")

    # 2. Transient faults on every task are retried to completion.
    reg = MetricsRegistry()
    faulty = run_sweep(APPS, SPACE, processes=1,
                       fault_hook=FailNTimes(times=1),
                       retry_backoff_s=0.0, metrics=reg)
    assert json.dumps(list(faulty), sort_keys=True) == reference
    assert len(faulty.failures()) == 0
    assert reg.counter("sweep.retries") == len(APPS) * len(SPACE)
    print(f"  fault injection OK: {int(reg.counter('sweep.retries'))} "
          "retries, zero stubs")

    # 3. Metrics report throughput and memoization.  The memoization
    #    check reads the *scalar* run's registry: the batched engine
    #    resolves kernel timings column-wise and barely touches the
    #    scalar kernel memo.
    d = summarize(reg.snapshot())["derived"]
    assert d["tasks_per_second"] and d["tasks_per_second"] > 0
    ds = summarize(reg_s.snapshot())["derived"]
    assert ds["memo_hit_rate"] is not None and ds["memo_hit_rate"] > 0
    print(f"  metrics OK: {d['tasks_per_second']:.1f} tasks/s, "
          f"scalar memo hit rate {ds['memo_hit_rate']:.2f}")

    # 4. Replay mode: event-driven MPI trace replay per point must give
    #    identical ResultSets across worker counts, differ from the
    #    analytic fast mode, and report replay activity.
    reg_r = MetricsRegistry()
    replay_1 = run_sweep(APPS, SPACE, n_ranks=16, processes=1,
                         mode="replay", metrics=reg_r)
    replay_ref = json.dumps(list(replay_1), sort_keys=True)
    replay_2 = run_sweep(APPS, SPACE, n_ranks=16, processes=2,
                         mode="replay")
    assert json.dumps(list(replay_2), sort_keys=True) == replay_ref, \
        "replay-mode sweep differs across worker counts"
    fast_16 = run_sweep(APPS, SPACE, n_ranks=16, processes=1)
    assert json.dumps(list(fast_16), sort_keys=True) != replay_ref, \
        "replay mode produced fast-mode results"
    dr = summarize(reg_r.snapshot())["derived"]
    assert dr["replay_events"] > 0 and dr["replay_messages"] > 0
    assert dr["replay_array_events"] > 0, \
        "batched replay sweep never priced an event on the array tape"
    print(f"  replay mode OK: {len(replay_1)} records identical across "
          f"1 and 2 workers, {int(dr['replay_events'])} events, "
          f"{int(dr['replay_messages'])} messages")

    # 5. Config-vectorized replay (the batched default above) vs the
    #    per-config scalar replay path: byte-for-byte identical
    #    ResultSets.
    reg_rs = MetricsRegistry()
    replay_scalar = run_sweep(APPS, SPACE, n_ranks=16, processes=1,
                              mode="replay", batch=False, metrics=reg_rs)
    drs = summarize(reg_rs.snapshot())["derived"]
    assert drs["replay_lockstep_events"] == 0
    assert drs["replay_array_events"] == 0
    assert json.dumps(list(replay_scalar), sort_keys=True) == replay_ref, \
        "config-vectorized replay differs from per-config replay"
    print(f"  replay batching OK: batched == per-config byte-for-byte, "
          f"{int(dr['replay_array_events'])} array events, "
          f"{int(dr['replay_peeled_configs'])} peeled")

    # 6. Sharded campaign: two disjoint K/N shards journaled separately,
    #    merged with merge_journal, must resume into the canonical
    #    ResultSet byte-for-byte with zero re-evaluation — and the
    #    merged journal must be byte-stable regardless of input order.
    with tempfile.TemporaryDirectory() as tmp:
        s0 = Path(tmp) / "s0.jsonl"
        s1 = Path(tmp) / "s1.jsonl"
        part0 = run_sweep(APPS, SPACE, processes=1, resume=s0, shard="0/2")
        part1 = run_sweep(APPS, SPACE, processes=1, resume=s1, shard="1/2")
        assert len(part0) + len(part1) == len(APPS) * len(SPACE)
        m_ab = Path(tmp) / "m_ab.jsonl"
        m_ba = Path(tmp) / "m_ba.jsonl"
        merge_journal([s0, s1], m_ab)
        merge_journal([s1, s0], m_ba)
        assert m_ab.read_bytes() == m_ba.read_bytes(), \
            "merged journal depends on shard input order"
        reg_m = MetricsRegistry()
        merged_run = run_sweep(APPS, SPACE, processes=1, resume=m_ab,
                               metrics=reg_m)
        assert reg_m.counter("sweep.tasks.completed") == 0, \
            "resume from merged shards re-evaluated tasks"
        assert json.dumps(list(merged_run), sort_keys=True) == reference, \
            "merged 2-shard journals differ from the single-process sweep"
        print(f"  shard merge OK: {len(part0)}+{len(part1)} tasks from 2 "
              "shards, merged resume bit-identical, zero re-evaluations")
    print("smoke sweep passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
