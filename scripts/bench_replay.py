#!/usr/bin/env python
"""Benchmark: event-driven vs polling MPI replay on a 256-rank trace.

Replays the paper-scale LULESH trace (256 ranks, Sec. II integration)
through both replay engines — the reactive event-driven simulator and
the fixed-point polling reference — verifies the ``ReplayResult``s are
numerically identical, and writes the comparison to
``BENCH_replay.json`` at the repo root.  Also times a finite-bus
variant (contended Dimemas bus pool), where the same ordering guarantee
must hold.

Run from the repo root:  PYTHONPATH=src python scripts/bench_replay.py
"""

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.apps import get_app
from repro.core.musa import Musa
from repro.network.model import NetworkConfig
from repro.network.replay import replay

APP = "lulesh"
N_RANKS = 256
N_ITERATIONS = 1
OUT = Path(__file__).resolve().parent.parent / "BENCH_replay.json"


def _results_identical(a, b, rtol=1e-9):
    if a.n_messages != b.n_messages or a.bytes_sent != b.bytes_sent:
        return False
    if not np.isclose(a.total_ns, b.total_ns, rtol=rtol, atol=0.0):
        return False
    for field in ("compute_ns", "p2p_ns", "collective_ns"):
        if not np.allclose(getattr(a, field), getattr(b, field),
                           rtol=rtol, atol=0.0):
            return False
    return True


def _bench(trace, net, duration, engine, repeats=3):
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = replay(trace, net, duration, engine=engine)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return result, best


def main() -> int:
    musa = Musa(get_app(APP))
    trace = musa._burst_trace(N_RANKS, N_ITERATIONS)
    n_events = sum(len(rt.events) for rt in trace.ranks)
    scales = musa.app.rank_scales(N_RANKS)
    phase_ns = {id(p): musa.burst_phase(p, 64).makespan_ns
                for p in musa.phases}

    def duration(rank, phase):
        return phase_ns[id(phase)] * scales[rank]

    print(f"benchmark: {APP} replay, {N_RANKS} ranks, {n_events} events")
    record = {
        "benchmark": "256-rank trace replay, polling vs event-driven",
        "app": APP,
        "n_ranks": N_RANKS,
        "n_iterations": N_ITERATIONS,
        "n_events": n_events,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    overall_ok = True
    min_speedup = None
    for label, net in [
        ("unlimited_buses", musa.network),
        ("finite_buses", NetworkConfig(
            latency_us=musa.network.latency_us,
            bandwidth_gbs=musa.network.bandwidth_gbs,
            cpu_overhead_us=musa.network.cpu_overhead_us,
            n_buses=8,
            eager_threshold_bytes=musa.network.eager_threshold_bytes)),
    ]:
        r_poll, t_poll = _bench(trace, net, duration, "polling")
        r_event, t_event = _bench(trace, net, duration, "event")
        identical = _results_identical(r_poll, r_event)
        overall_ok &= identical
        speedup = t_poll / t_event
        min_speedup = speedup if min_speedup is None else min(min_speedup,
                                                              speedup)
        print(f"  {label:16s}: polling {t_poll:7.3f} s, "
              f"event {t_event:7.3f} s, speedup {speedup:5.1f}x, "
              f"identical={identical}")
        record[label] = {
            "polling_wall_s": round(t_poll, 4),
            "event_wall_s": round(t_event, 4),
            "speedup": round(speedup, 2),
            "results_identical_rtol_1e-9": identical,
            "total_ns": float(r_event.total_ns),
            "n_messages": int(r_event.n_messages),
        }
    assert overall_ok, "engines disagree"
    assert min_speedup >= 5.0, f"speedup {min_speedup:.1f}x below 5x floor"
    record["min_speedup"] = round(min_speedup, 2)
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
