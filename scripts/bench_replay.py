#!/usr/bin/env python
"""Thin wrapper: the event-engine replay benchmark (PR 3 lineage).

The event-vs-polling comparison and identity assert now live in
:mod:`repro.bench` (``micro.event_engine``, whose oracle checks the
reactive event engine against the polling reference on the 256-rank
LULESH trace).  The historical ``BENCH_replay.json`` snapshot was
migrated into the trend ledger.

Run from the repo root:
    PYTHONPATH=src python scripts/bench_replay.py [--smoke]
"""

import argparse
import sys

from repro.cli.main import main as repro_main


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true")
    ap.add_argument("--out", default="BENCH_replay.report.json")
    ap.add_argument("--append", action="store_true")
    ap.add_argument("--ledger", default="BENCH_LEDGER.jsonl")
    args = ap.parse_args()

    argv = ["bench", "--only", "micro.event_engine", "--json", args.out,
            "--ledger", args.ledger]
    if args.smoke:
        argv.append("--smoke")
    if args.append:
        argv.append("--append")
    return repro_main(argv)


if __name__ == "__main__":
    sys.exit(main())
