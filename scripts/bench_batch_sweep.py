#!/usr/bin/env python
"""Thin wrapper: the batched fast-mode sweep benchmark (PR 2 lineage).

The scalar-vs-batched comparison, identity assert and env capture this
script used to implement now live in :mod:`repro.bench`
(``macro.fast_sweep``, whose oracle checks the batched evaluator
against scalar ``Musa.simulate_node``).  The historical
``BENCH_batch_sweep.json`` snapshot was migrated into the trend ledger
(see ``repro bench --seed-from-snapshots``).

Run from the repo root:
    PYTHONPATH=src python scripts/bench_batch_sweep.py [--smoke]
"""

import argparse
import sys

from repro.cli.main import main as repro_main


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true")
    ap.add_argument("--out", default="BENCH_batch_sweep.report.json")
    ap.add_argument("--append", action="store_true")
    ap.add_argument("--ledger", default="BENCH_LEDGER.jsonl")
    args = ap.parse_args()

    argv = ["bench", "--only", "macro.fast_sweep", "--json", args.out,
            "--ledger", args.ledger]
    if args.smoke:
        argv.append("--smoke")
    if args.append:
        argv.append("--append")
    return repro_main(argv)


if __name__ == "__main__":
    sys.exit(main())
