#!/usr/bin/env python
"""Benchmark: batched vs scalar evaluation on the full 864-config
LULESH sweep.

Runs the complete single-app campaign twice — scalar per-config
simulation and the batched config-major engine — verifies the two
ResultSets are equal, and writes the throughput comparison to
``BENCH_batch_sweep.json`` at the repo root.

Run from the repo root:  PYTHONPATH=src python scripts/bench_batch_sweep.py
"""

import json
import platform
import sys
import time
from pathlib import Path

from repro.config import DesignSpace
from repro.core import run_sweep
from repro.obs import MetricsRegistry

APP = "lulesh"
OUT = Path(__file__).resolve().parent.parent / "BENCH_batch_sweep.json"


def _campaign(**kw):
    reg = MetricsRegistry()
    t0 = time.perf_counter()
    rs = run_sweep([APP], DesignSpace(), processes=1, metrics=reg, **kw)
    wall_s = time.perf_counter() - t0
    return rs, {
        "wall_s": round(wall_s, 3),
        "tasks": int(reg.counter("sweep.tasks.completed")),
        "tasks_per_second": round(
            reg.counter("sweep.tasks.completed") / wall_s, 2),
        "batched_configs": int(reg.counter("sweep.batch.configs")),
        "batch_fallbacks": int(reg.counter("sweep.batch.fallback")),
    }


def main() -> int:
    n = len(DesignSpace())
    print(f"benchmark: {APP} x {n} configs, scalar vs batched (inline)")

    scalar_rs, scalar = _campaign(batch=False)
    print(f"  scalar : {scalar['wall_s']:8.2f} s  "
          f"{scalar['tasks_per_second']:8.1f} tasks/s")

    batched_rs, batched = _campaign(batch=True, batch_size=256)
    print(f"  batched: {batched['wall_s']:8.2f} s  "
          f"{batched['tasks_per_second']:8.1f} tasks/s")

    identical = list(scalar_rs) == list(batched_rs)
    assert identical, "batched ResultSet differs from scalar"
    speedup = batched["tasks_per_second"] / scalar["tasks_per_second"]
    print(f"  results bit-identical; speedup {speedup:.2f}x")

    OUT.write_text(json.dumps({
        "benchmark": "full-space single-app sweep, scalar vs batched",
        "app": APP,
        "n_configs": n,
        "processes": 1,
        "batch_size": 256,
        "scalar": scalar,
        "batched": batched,
        "speedup": round(speedup, 2),
        "results_bit_identical": identical,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }, indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
