#!/usr/bin/env python
"""Benchmark: config-vectorized vs per-config MPI replay at paper scale.

Replays the paper-scale LULESH trace (256 ranks) under every node
configuration of the full 864-point design space, pricing each
configuration's detailed per-phase compute makespans — once through the
per-config scalar event engine (864 separate replays) and once through
the config-vectorized batch engine (one pass over all 864 columns).
Verifies every configuration's ``ReplayResult`` is **bit-identical**
between the two paths, then writes the comparison to
``BENCH_replay_batch.json`` at the repo root.

A second section exercises the lockstep-peel driver (finite-bus pool,
where step order is config-dependent) at a smaller scale and verifies
the same bit-identity contract.

Run from the repo root:
    PYTHONPATH=src python scripts/bench_replay_batch.py
"""

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.apps import get_app
from repro.config import full_design_space
from repro.core.musa import Musa
from repro.network.model import NetworkConfig
from repro.network.replay import replay
from repro.network.replay_batch import replay_batch
from repro.obs import get_metrics

APP = "lulesh"
N_RANKS = 256
N_ITERATIONS = 1
OUT = Path(__file__).resolve().parent.parent / "BENCH_replay_batch.json"


def _bit_identical(a, b):
    if a.n_messages != b.n_messages or a.bytes_sent != b.bytes_sent:
        return False
    if float(a.total_ns) != float(b.total_ns):
        return False
    for field in ("compute_ns", "p2p_ns", "collective_ns"):
        if not np.array_equal(np.asarray(getattr(a, field), dtype=float),
                              np.asarray(getattr(b, field), dtype=float)):
            return False
    return True


def _duration_columns(musa, nodes, n_ranks):
    """Per-phase config columns of detailed makespans (ns), and the
    matching batched/scalar duration functions."""
    scales = musa.app.rank_scales(n_ranks)
    cols = {id(p): np.array([musa.phase_detail(p, node).makespan_ns
                             for node in nodes])
            for p in musa.phases}

    def dur_batch(rank, phase):
        return cols[id(phase)] * scales[rank]

    def dur_scalar(c):
        return lambda rank, phase, _c=c: cols[id(phase)][_c] * scales[rank]

    return dur_batch, dur_scalar


def main() -> int:
    musa = Musa(get_app(APP))
    nodes = list(full_design_space())
    n_cfg = len(nodes)
    trace = musa._burst_trace(N_RANKS, N_ITERATIONS)
    n_events = sum(len(rt.events) for rt in trace.ranks)
    print(f"benchmark: {APP} replay x {n_cfg} configs, {N_RANKS} ranks, "
          f"{n_events} events per replay")
    print("  computing detailed per-phase makespans for every config...")
    dur_batch, dur_scalar = _duration_columns(musa, nodes, N_RANKS)
    net = musa.network  # MareNostrum4-like: unlimited bus pool

    reg = get_metrics()
    peeled0 = reg.counter("replay.batch.peeled_configs")
    t_batch = None
    for _ in range(3):
        t0 = time.perf_counter()
        batched = replay_batch(trace, net, dur_batch, n_cfg)
        wall = time.perf_counter() - t0
        t_batch = wall if t_batch is None else min(t_batch, wall)
    peeled = int(reg.counter("replay.batch.peeled_configs") - peeled0) // 3

    t0 = time.perf_counter()
    scalar = [replay(trace, net, dur_scalar(c), engine="event")
              for c in range(n_cfg)]
    t_scalar = time.perf_counter() - t0

    identical = all(_bit_identical(a, b) for a, b in zip(scalar, batched))
    speedup = t_scalar / t_batch
    print(f"  per-config event replay: {t_scalar:7.2f} s "
          f"({t_scalar / n_cfg * 1e3:6.1f} ms/config)")
    print(f"  config-vectorized pass:  {t_batch:7.2f} s "
          f"({t_batch / n_cfg * 1e3:6.1f} ms/config)")
    print(f"  speedup {speedup:5.1f}x, bit_identical={identical}, "
          f"peeled={peeled}/{n_cfg}")
    assert identical, "batched replay diverged from per-config replay"
    assert speedup >= 5.0, f"speedup {speedup:.1f}x below the 5x floor"

    # Lockstep-peel driver: finite buses make step order config-
    # dependent; divergent columns must peel and still match exactly.
    n_small_ranks, n_small_cfg = 16, 32
    small_trace = musa._burst_trace(n_small_ranks, N_ITERATIONS)
    dur_b_small, dur_s_small = _duration_columns(
        musa, nodes[:n_small_cfg], n_small_ranks)
    finite = NetworkConfig(
        latency_us=net.latency_us, bandwidth_gbs=net.bandwidth_gbs,
        cpu_overhead_us=net.cpu_overhead_us, n_buses=8,
        eager_threshold_bytes=net.eager_threshold_bytes)
    peeled0 = reg.counter("replay.batch.peeled_configs")
    t0 = time.perf_counter()
    b_small = replay_batch(small_trace, finite, dur_b_small, n_small_cfg)
    t_small = time.perf_counter() - t0
    s_small = [replay(small_trace, finite, dur_s_small(c), engine="event")
               for c in range(n_small_cfg)]
    small_identical = all(_bit_identical(a, b)
                          for a, b in zip(s_small, b_small))
    small_peeled = int(reg.counter("replay.batch.peeled_configs") - peeled0)
    print(f"  finite-bus lockstep ({n_small_ranks} ranks x {n_small_cfg} "
          f"configs): {t_small:.2f} s, peeled={small_peeled}, "
          f"bit_identical={small_identical}")
    assert small_identical, "lockstep-peel driver diverged from scalar"

    record = {
        "benchmark": "config-vectorized vs per-config MPI replay",
        "app": APP,
        "n_ranks": N_RANKS,
        "n_configs": n_cfg,
        "n_iterations": N_ITERATIONS,
        "n_events_per_replay": n_events,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "unlimited_buses": {
            "per_config_event_wall_s": round(t_scalar, 3),
            "batched_wall_s": round(t_batch, 3),
            "speedup": round(speedup, 2),
            "bit_identical": identical,
            "peeled_configs": peeled,
            "driver": "shared-order (order-free network)",
        },
        "finite_buses_lockstep": {
            "n_ranks": n_small_ranks,
            "n_configs": n_small_cfg,
            "n_buses": 8,
            "batched_wall_s": round(t_small, 3),
            "peeled_configs": small_peeled,
            "bit_identical": small_identical,
            "driver": "lockstep-peel (tournament tree + modal vote)",
        },
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
