#!/usr/bin/env python
"""Thin wrapper: the config-vectorized replay benchmarks (PR 4/5 lineage).

The batched-vs-scalar replay comparison, the finite-bus sections and
their bit-identity asserts now live in :mod:`repro.bench`
(``micro.tape_replay`` — the level-batched array driver on the
order-free path, ``micro.bus_arbitration`` — the fork-on-divergence
finite-bus lockstep driver — and ``micro.bus_lockstep`` — the same
driver on a uniform-scale batch, pinning the zero-divergence pure
vectorized arbitration cost).  The historical
``BENCH_replay_batch.json`` snapshot was migrated into the trend
ledger.

Run from the repo root:
    PYTHONPATH=src python scripts/bench_replay_batch.py [--smoke]
"""

import argparse
import sys

from repro.cli.main import main as repro_main

BENCH_IDS = ["micro.tape_replay", "micro.bus_arbitration",
             "micro.bus_lockstep"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true")
    ap.add_argument("--out", default="BENCH_replay_batch.report.json")
    ap.add_argument("--append", action="store_true")
    ap.add_argument("--ledger", default="BENCH_LEDGER.jsonl")
    args = ap.parse_args()

    argv = ["bench", "--only", *BENCH_IDS, "--json", args.out,
            "--ledger", args.ledger]
    if args.smoke:
        argv.append("--smoke")
    if args.append:
        argv.append("--append")
    return repro_main(argv)


if __name__ == "__main__":
    sys.exit(main())
