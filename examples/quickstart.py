#!/usr/bin/env python
"""Quickstart: simulate one application on one node configuration.

Runs LULESH (256 MPI ranks, 64 cores per node) on the baseline
architecture and on an 8-channel variant, printing performance, the
paper-style power breakdown, and energy-to-solution.

Usage::

    python examples/quickstart.py
"""

from repro import Musa, baseline_node, get_app


def describe(label, result):
    p = result.power
    print(f"--- {label} ---")
    print(f"  runtime          : {result.time_ns / 1e6:8.2f} ms")
    print(f"  Core+L1 power    : {p.core_l1_w:8.1f} W")
    print(f"  L2+L3 power      : {p.l2_l3_w:8.1f} W")
    print(f"  Memory power     : {p.memory_w:8.1f} W")
    print(f"  node power       : {p.total_w:8.1f} W")
    print(f"  energy/node      : {result.energy_j:8.2f} J")
    print(f"  L1/L2/L3 MPKI    : {result.mpki_l1:6.2f} /"
          f" {result.mpki_l2:6.2f} / {result.mpki_l3:6.2f}")
    print(f"  DRAM requests    : {result.gmem_req_per_s:8.3f} G/s"
          f"  (bandwidth utilization {result.bw_utilization:.0%})")
    print(f"  core occupancy   : {result.occupancy:8.0%}")
    print()


def main():
    # A Musa instance owns one application's traces and caches.
    musa = Musa(get_app("lulesh"))

    # The Fig. 1 baseline: medium cores, 64M:512K caches, 4-channel
    # DDR4, 2 GHz, 128-bit SIMD, 64 cores.
    node = baseline_node(n_cores=64)
    base = musa.simulate_node(node)
    describe(f"LULESH on {node.label}", base)

    # LULESH is bandwidth-bound: doubling the memory channels is the
    # one knob that moves it (the paper's Fig. 8 headline).
    node8 = node.with_(memory="8chDDR4")
    more_bw = musa.simulate_node(node8)
    describe(f"LULESH on {node8.label}", more_bw)

    speedup = base.time_ns / more_bw.time_ns
    energy = more_bw.energy_j / base.energy_j
    print(f"8-channel speedup: {speedup:.2f}x   "
          f"energy-to-solution: {energy:.2f}x")


if __name__ == "__main__":
    main()
