#!/usr/bin/env python
"""Scaling study: reproduce the paper's Sec. V-A analysis end to end.

For each application: hardware-agnostic compute-region scaling (Fig. 2a),
full-application scaling with MPI replay (Fig. 2b), a Specfem3D-style
occupancy timeline (Fig. 3) and a LULESH-style rank timeline (Fig. 4).

Usage::

    python examples/scaling_study.py [ranks]   # default 64 ranks
"""

import sys

from repro import APP_NAMES, Musa, get_app
from repro.analysis import (
    compute_region_scaling,
    format_rows,
    full_app_scaling,
    occupancy_stats,
    rank_activity_stats,
    render_core_timeline,
    render_rank_timeline,
)


def main():
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    rows_a, rows_b = [], []
    musas = {name: Musa(get_app(name)) for name in APP_NAMES}
    for name, musa in musas.items():
        a = compute_region_scaling(musa)
        b = full_app_scaling(musa, n_ranks=n_ranks, n_iterations=2)
        rows_a.append([name, a.speedups[1], a.speedups[2],
                       a.efficiency(64)])
        rows_b.append([name, b.speedups[1], b.speedups[2],
                       b.efficiency(64)])

    print(format_rows(
        "Fig. 2a — single compute region (hardware agnostic)",
        ["app", "speedup@32", "speedup@64", "efficiency@64"], rows_a))
    print()
    print(format_rows(
        f"Fig. 2b — full application, {n_ranks} ranks (incl. MPI)",
        ["app", "speedup@32", "speedup@64", "efficiency@64"], rows_b))

    # Fig. 3: why Specfem3D stops scaling — task starvation.
    musa = musas["spec3d"]
    sched = musa.burst_phase(musa.app.representative_phase(), 64,
                             collect_spans=True)
    stats = occupancy_stats(sched)
    print(f"\nFig. 3 — Specfem3D, 64 cores: occupancy "
          f"{stats.busy_fraction:.0%}, {stats.active_cores}/64 cores "
          "ever execute a task")
    print(render_core_timeline(sched.spans, 64, sched.makespan_ns,
                               width=70, max_cores=24))

    # Fig. 4: where LULESH's time goes at scale — barrier waits.
    musa = musas["lulesh"]
    res = musa.simulate_burst_full(n_cores=64, n_ranks=min(n_ranks, 32),
                                   n_iterations=2, collect_segments=True)
    rstats = rank_activity_stats(res)
    print(f"\nFig. 4 — LULESH, {res.n_ranks} ranks x 64 cores: "
          f"{rstats.mean_collective_fraction:.0%} of rank-time inside "
          "collectives (imbalance wait)")
    print("legend: '#' compute, 'B' collective, '-' p2p, 'w' wait")
    print(render_rank_timeline(res.segments, res.n_ranks, res.total_ns,
                               width=70, max_ranks=16))


if __name__ == "__main__":
    main()
