#!/usr/bin/env python
"""Design-space exploration: sweep a slice of the Table I space and
derive co-design recommendations, the paper's core workflow.

Sweeps the full 2 GHz / 64-core plane (144 configurations x 5 apps),
prints the per-axis normalized impacts, and reports the best
configuration per application under three objectives: performance,
energy, and energy-delay product.

Usage::

    python examples/design_space_exploration.py [--full]

``--full`` runs all 864 configurations (a few minutes; uses all cores).
"""

import sys

from repro import APP_NAMES, full_design_space, normalize_axis, run_sweep
from repro.analysis import format_rows
from repro.config import DesignSpace


def best_configs(results):
    rows = []
    for app in APP_NAMES:
        sub = results.filter(app=app)
        records = list(sub)
        by_perf = min(records, key=lambda r: r["time_ns"])
        with_energy = [r for r in records if r["energy_j"] is not None]
        by_energy = min(with_energy, key=lambda r: r["energy_j"])
        by_edp = min(with_energy,
                     key=lambda r: r["energy_j"] * r["time_ns"])

        def label(r):
            return (f"{r['core']}/{r['cache']}/{r['memory']}/"
                    f"{r['vector']}b/{r['frequency']}GHz")

        rows.append([app, label(by_perf), label(by_energy), label(by_edp)])
    return format_rows("Best configuration per application",
                       ["app", "fastest", "least energy", "best EDP"], rows)


def axis_summary(results, axis, baseline):
    bars = normalize_axis(results, axis, baseline, "time_ns")
    rows = []
    values = [v for v in {b.value for b in bars}]
    for app in APP_NAMES:
        app_bars = {b.value: b.mean for b in bars
                    if b.app == app and b.cores == 64}
        best_value = max(app_bars, key=app_bars.get)
        rows.append([app, f"{best_value}", f"{app_bars[best_value]:.2f}x"])
    return format_rows(f"Axis '{axis}' (vs {baseline}): best value per app",
                       ["app", "best value", "speedup"], rows)


def main():
    if "--full" in sys.argv:
        space = full_design_space()
        print(f"Running the full design space: {len(space)} configurations "
              f"x {len(APP_NAMES)} applications ...")
    else:
        space = DesignSpace(frequencies=(2.0,), core_counts=(64,))
        print(f"Running the 2 GHz / 64-core plane: {len(space)} "
              f"configurations x {len(APP_NAMES)} applications "
              "(pass --full for all 864) ...")

    results = run_sweep(APP_NAMES, space, progress=True)
    print(f"done: {len(results)} simulations\n")

    print(axis_summary(results, "vector", 128), "\n")
    print(axis_summary(results, "core", "aggressive"), "\n")
    print(axis_summary(results, "memory", "4chDDR4"), "\n")
    print(best_configs(results), "\n")

    # The paper's co-design punchline: occupancy drives energy waste.
    rows = []
    for app in APP_NAMES:
        sub = results.filter(app=app)
        occ = sub.values("occupancy").mean()
        rows.append([app, f"{occ:.0%}"])
    print(format_rows("Average core occupancy (leakage-waste exposure)",
                      ["app", "occupancy"], rows))


if __name__ == "__main__":
    main()
