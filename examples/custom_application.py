#!/usr/bin/env python
"""Bring your own application: model a conjugate-gradient solver and
run it through the full MUSA pipeline.

This is the workflow a co-design team would use for an application the
paper didn't study: describe the kernels (instruction mix, reuse
profile, vectorization structure), describe the runtime structure
(tasks per phase, imbalance, MPI pattern), then reuse every analysis in
the library — characterization, axis sensitivities, scaling.

Usage::

    python examples/custom_application.py
"""

from typing import Dict, Tuple

from repro import AppModel, Musa, baseline_node
from repro.analysis import format_rows
from repro.runtime import parallel_for
from repro.trace import (
    ComputePhase,
    InstructionMix,
    KernelSignature,
    ReuseProfile,
)

_REF_NS_PER_INSTR = 0.5
_SPMV_INSTR = 600_000.0
_DOT_INSTR = 150_000.0


class ConjugateGradient(AppModel):
    """A sparse CG solver: SpMV-dominated, latency-bound, allreduce-heavy."""

    name = "cg"
    halo_bytes = 256 * 1024
    allreduce_per_iter = 2          # two dot products per CG iteration
    rank_imbalance = 0.15
    default_iterations = 4

    def kernels(self) -> Dict[str, KernelSignature]:
        # SpMV: indirect column accesses -> broad reuse spectrum with a
        # heavy uncacheable tail and low DRAM row locality.
        spmv_reuse = ReuseProfile.from_components(
            [(6.0, 0.80), (800.0, 0.11), (30_000.0, 0.05), (2e6, 0.035)],
            cold_fraction=0.005,
        )
        dot_reuse = ReuseProfile.from_components(
            [(6.0, 0.97), (2e6, 0.028)], cold_fraction=0.002,
        )
        return {
            "spmv": KernelSignature(
                name="spmv", instr_per_unit=_SPMV_INSTR,
                mix=InstructionMix(fp=0.25, int_alu=0.20, load=0.33,
                                   store=0.08, branch=0.10, other=0.04),
                ilp=2.0, vec_fraction=0.35, trip_count=24, mlp=3.0,
                reuse=spmv_reuse, row_hit_rate=0.25,
            ),
            "dot": KernelSignature(
                name="dot", instr_per_unit=_DOT_INSTR,
                mix=InstructionMix(fp=0.40, int_alu=0.10, load=0.35,
                                   store=0.02, branch=0.10, other=0.03),
                ilp=3.5, vec_fraction=0.95, trip_count=4096, mlp=10.0,
                reuse=dot_reuse, row_hit_rate=0.9,
            ),
        }

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        spmv = parallel_for(
            phase_id=0, kernel="spmv", n_iterations=256,
            iter_ns=_SPMV_INSTR * _REF_NS_PER_INSTR, chunk=1,
            imbalance=0.25, creation_ns=250.0, serial_ns=2_000.0, rng=rng)
        dot = parallel_for(
            phase_id=1, kernel="dot", n_iterations=256,
            iter_ns=_DOT_INSTR * _REF_NS_PER_INSTR, chunk=1,
            imbalance=0.05, creation_ns=250.0, rng=rng)
        return (spmv, dot)


def main():
    musa = Musa(ConjugateGradient())
    base = baseline_node(64)

    r = musa.simulate_node(base)
    print("CG characterization on the baseline node:")
    print(f"  runtime {r.time_ns / 1e6:.2f} ms   node power "
          f"{r.power.total_w:.0f} W   MPKI {r.mpki_l1:.1f}/"
          f"{r.mpki_l2:.1f}/{r.mpki_l3:.1f}   BW util "
          f"{r.bw_utilization:.0%}\n")

    # Which of the paper's six axes would help CG?
    variants = {
        "512-bit SIMD": base.with_(vector_bits=512),
        "aggressive OoO": base.with_(core="aggressive"),
        "96M:1M caches": base.with_(cache="96M:1M"),
        "8-channel DDR4": base.with_(memory="8chDDR4"),
        "3.0 GHz clock": base.with_(frequency_ghz=3.0),
    }
    rows = []
    for label, node in variants.items():
        v = musa.simulate_node(node)
        rows.append([label, r.time_ns / v.time_ns,
                     v.energy_j / r.energy_j])
    print(format_rows("Axis sensitivities (vs baseline)",
                      ["variant", "speedup", "energy ratio"], rows))

    # SpMV streams a large sparse matrix every iteration: the sweep
    # discovers a memory-system story (bandwidth first, then caches),
    # with SIMD and clock speed useless — the LULESH pattern.
    speeds = {row[0]: row[1] for row in rows}
    best = max(speeds, key=speeds.get)
    print(f"\nBest single upgrade for CG: {best} ({speeds[best]:.2f}x) — "
          "a memory-system story, as expected for sparse solvers.")


if __name__ == "__main__":
    main()
