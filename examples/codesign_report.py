#!/usr/bin/env python
"""Co-design report: from a sweep to procurement guidance.

The paper's final deliverable (Sec. VII) is a set of evidence-based
recommendations for next-generation HPC systems.  This example derives
that report programmatically: run a sweep, extract per-application
Pareto fronts, pick winners per objective, and print the guideline
summary — then drill into *why* with CPI stacks.

Usage::

    python examples/codesign_report.py
"""

from repro import APP_NAMES, get_app
from repro.analysis import (
    Constraints,
    best_configs,
    format_rows,
    optimize_node,
    pareto_front,
    recommend,
)
from repro.config import DesignSpace, baseline_node, parse_node
from repro.core import run_sweep
from repro.uarch import explain_kernel


def main():
    space = DesignSpace(frequencies=(2.0,), core_counts=(64,))
    print(f"sweeping the 2 GHz / 64-core plane "
          f"({len(space)} configs x {len(APP_NAMES)} apps)...")
    results = run_sweep(APP_NAMES, space, progress=True)

    # 1. The headline guidelines (Sec. VII, derived not eyeballed).
    print()
    print(recommend(results, cores=64).render())

    # 2. Per-application winners and trade-off curves.
    print()
    rows = []
    for app in APP_NAMES:
        best = best_configs(results, app)
        front = pareto_front(results, app)
        rows.append([
            app,
            f"{best['performance']['core']}/"
            f"{best['performance']['vector']}b/"
            f"{best['performance']['memory']}",
            f"{best['energy']['core']}/{best['energy']['vector']}b/"
            f"{best['energy']['memory']}",
            len(front),
        ])
    print(format_rows(
        "Per-application winners (2 GHz / 64 cores)",
        ["app", "fastest (core/vec/mem)", "least energy", "Pareto size"],
        rows))

    # 3. Why: CPI stacks of each app's dominant kernel at the baseline.
    print()
    node = baseline_node(64)
    for app in APP_NAMES:
        detailed = get_app(app).detailed_trace()
        kernel = detailed.names()[0]
        print(explain_kernel(detailed[kernel], node,
                             l3_share_cores=32).render())
        print()

    # 4. The constrained procurement pick: one machine for the whole
    #    mix, under a 160 W node power envelope.
    choice = optimize_node(results, objective="time_ns",
                           constraints=Constraints(power_cap_w=160.0))
    print(f"Best shared design under 160 W: {choice.label} "
          f"(geomean time {choice.score / 1e6:.2f} ms, "
          f"{choice.n_feasible} feasible configs)")
    print()

    # 5. One concrete balanced suggestion as a node spec string.
    rec = recommend(results, cores=64)
    core = rec.by_axis("core")[0].value
    cache = rec.by_axis("cache")[0].value
    vector = rec.by_axis("vector")[0].value
    spec = f"{core}/{cache}/8chDDR4/2GHz/{vector}b/64c"
    node = parse_node(spec)
    print(f"Suggested balanced node: {spec}")
    print(f"  -> {node.label}")


if __name__ == "__main__":
    main()
