#!/usr/bin/env python
"""Memory-system deep dive: the substrate pipeline, end to end.

The design-space sweep uses analytic models for speed; this example
walks the *event-level* substrate they are validated against:

1. generate a synthetic address stream (what DynamoRIO would record);
2. profile its reuse distances (Mattson stack analysis);
3. replay it through the exact set-associative cache hierarchy;
4. feed the resulting miss stream to the FR-FCFS DRAM controller;
5. integrate command energies with the DRAMPower model;
6. compare the measured miss ratios / bandwidth with the analytic
   models the sweep uses.

Usage::

    python examples/memory_system_deep_dive.py
"""

import numpy as np

from repro.config import LINE_BYTES, cache_preset, memory_preset
from repro.dram import DramSystem, dram_standard, efficiency
from repro.power import DramPowerModel
from repro.trace import profile_stream
from repro.trace.streams import interleave, random_uniform, stencil1d
from repro.uarch import CacheHierarchySim


def main():
    # 1. A stencil sweep (structured grid) interleaved with an indirect
    #    gather (unstructured mesh) — a miniature HYDRO+Specfem3D mix.
    stencil = stencil1d(n_points=40_000, radius=1, n_iters=2)
    gather = random_uniform(ws_bytes=32 << 20, n_accesses=60_000, seed=7)
    stream = interleave([stencil, gather], seed=1)
    print(f"stream: {len(stream):,} accesses "
          f"({len(stencil):,} stencil + {len(gather):,} gather)")

    # 2. Reuse-distance profile (the sweep's cache-model input).
    profile = profile_stream(stream, max_samples=120_000)
    print(f"mean finite reuse distance: {profile.mean_distance():,.0f} lines;"
          f" compulsory fraction: {profile.cold_fraction:.2%}")

    # 3. Exact replay through the 64M:512K hierarchy.
    hierarchy = cache_preset("64M:512K")
    sim = CacheHierarchySim(hierarchy, l3_shards=32)  # one of 32 busy cores
    miss_lines = sim.miss_lines(stream)
    l1, l2, l3 = sim.l1.stats, sim.l2.stats, sim.l3.stats
    print("\nexact hierarchy replay (one core's share of a 32-busy L3):")
    for name, st in (("L1", l1), ("L2", l2), ("L3", l3)):
        print(f"  {name}: {st.accesses:7,} accesses  "
              f"miss ratio {st.miss_ratio:6.1%}")

    # ... versus the analytic model used inside the 864-point sweep.
    model_l1 = profile.miss_ratio(hierarchy.l1.n_lines,
                                  associativity=hierarchy.l1.associativity,
                                  n_sets=hierarchy.l1.n_sets)
    print(f"  analytic L1 miss ratio: {model_l1:.1%} "
          f"(exact {l1.miss_ratio:.1%})")

    # 4. The DRAM request stream drives the FR-FCFS controller.
    timing = dram_standard("DDR4-2400")
    dram = DramSystem(timing, n_channels=4)
    res = dram.run(miss_lines, write_fraction=0.3)
    counts = res.counts
    print(f"\nDRAM (4 x {timing.name}): {counts.n_col:,} column commands, "
          f"{counts.n_act:,} activates "
          f"(row-hit rate {counts.row_hit_rate():.1%})")
    print(f"  achieved bandwidth: {res.achieved_bw_gbs:6.2f} GB/s  "
          f"(analytic envelope: "
          f"{4 * timing.peak_bw_gbs * efficiency(timing, counts.row_hit_rate()):6.2f}"
          " GB/s)")

    # 5. DRAMPower integration over the command trace.
    power = DramPowerModel().from_counts(
        memory_preset("4chDDR4"), counts, res.elapsed_ns * 1e-9)
    print(f"\nDRAM power: background {power.background_w:5.1f} W + "
          f"ACT {power.activate_w:5.1f} W + RD/WR {power.rdwr_w:5.1f} W + "
          f"refresh {power.refresh_w:4.1f} W = {power.total_w:5.1f} W")

    # 6. HBM comparison (the MEM++ configuration of Table II).
    hbm = dram_standard("HBM2")
    res_hbm = DramSystem(hbm, n_channels=4).run(miss_lines,
                                                write_fraction=0.3)
    print(f"\nsame miss stream on 4 x HBM2 pseudo-channels: "
          f"{res_hbm.achieved_bw_gbs:.2f} GB/s "
          f"({res_hbm.achieved_bw_gbs / res.achieved_bw_gbs:.2f}x DDR4)")


if __name__ == "__main__":
    main()
